"""Tree repair: orphan re-attach and transient-churn membership patching.

PR 2's recovery story was all-or-nothing: a silent subtree could only be
*re-initialized* — the most expensive reaction the energy model knows.
This module adds the reactions a real deployment uses first:

* **Orphan re-attach** — when a vertex's tree parent goes down, the vertex
  probes its physical neighbourhood (one beacon, every up neighbour answers)
  and re-attaches its whole subtree to the nearest up neighbour that still
  has a fully-up path to the root and lies outside its own subtree.  The
  routing tree is rewritten (:func:`~repro.network.tree.tree_reparented`),
  the engine swaps it in (:meth:`~repro.sim.engine.TreeNetwork.retarget`),
  and the adopting parent reports the membership change up to the root.
  Only when *no* candidate is in radio range does the subtree stay cut off
  and the driver falls back to the watchdog's re-initialization.

* **Membership patching (detach / rejoin)** — the root tracks which sensors
  can currently report (up + connected).  Nodes that leave (death, outage,
  unreachable orphan) are *detached*: the algorithm moves their last-known
  interval label out of its counters and shrinks ``k``'s population instead
  of restarting the query.  Nodes that come back are *rejoined*: the parent
  re-pushes the current filter (one hop), the node reports its value up,
  and the root moves the label back in.  Validation filters and intervals
  survive; on a loss-free network the answers stay exactly the live
  population's quantile through arbitrary churn.

All repair traffic — probe beacons, neighbour replies, the adopt handshake,
membership reports and filter re-pushes — is charged to the energy ledger
under the ``"repair"`` phase, so ``repro faults`` can show what recovery
actually costs next to what it saves.

The root's membership view is modelled as consistent at the end of each
repair pass (link-layer hello detection plus membership reports); reports
are only charged where an up reporting path exists.  The watchdog is
retargeted on every membership change so it awaits exactly the branches
that can still deliver — this is what stops a subtree repaired during a
watchdog grace window from being re-initialized on top (and double-charged).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import VALUE_BITS
from repro.errors import ConfigurationError
from repro.faults.network import FaultyTreeNetwork
from repro.faults.watchdog import RootWatchdog
from repro.network.topology import PhysicalGraph
from repro.network.tree import tree_reparented
from repro.radio.message import MessageCost, ack_cost, message_bits

#: Phase label repair traffic is charged under in ``net.phase_bits``.
REPAIR_PHASE = "repair"


@dataclass(frozen=True)
class RepairRound:
    """What one repair pass did at the start of a round."""

    #: ``(orphan, new_parent)`` re-attachments performed, in order.
    reattached: tuple[tuple[int, int], ...] = ()
    #: Orphans that found no eligible neighbour *for the first time* (the
    #: driver schedules the watchdog-style re-initialization fallback).
    fallback: tuple[int, ...] = ()
    #: Vertices detached from the query this round.
    detached: tuple[int, ...] = ()
    #: Vertices rejoined to the query this round.
    rejoined: tuple[int, ...] = ()

    @property
    def changed_membership(self) -> bool:
        return bool(self.reattached or self.detached or self.rejoined)


@dataclass
class RepairStats:
    """Cumulative repair activity over a run."""

    reattach_count: int = 0
    fallback_count: int = 0
    detach_count: int = 0
    rejoin_count: int = 0
    #: Total energy [J] spent on repair traffic (probes, adopts, reports).
    repair_energy_j: float = 0.0
    #: On-air bits of repair traffic.
    repair_bits: int = 0
    #: Per-round records, in order.
    rounds: list[RepairRound] = field(default_factory=list)


class TreeRepair:
    """Per-round tree repair and membership maintenance for one network.

    Args:
        graph: the physical connectivity graph (candidate parents must be
            within radio range ``rho``).
        net: the fault-injecting network whose tree is repaired in place.
        watchdog: optional root watchdog to retarget on membership changes.
    """

    def __init__(
        self,
        graph: PhysicalGraph,
        net: FaultyTreeNetwork,
        watchdog: RootWatchdog | None = None,
    ) -> None:
        if graph.num_vertices != net.tree.num_vertices:
            raise ConfigurationError(
                f"graph has {graph.num_vertices} vertices but tree has "
                f"{net.tree.num_vertices}"
            )
        self.graph = graph
        self.net = net
        self.watchdog = watchdog
        self.plan = net.plan
        self.stats = RepairStats()
        #: Sensors the root currently considers outside the query.
        self.detached: set[int] = set()
        #: Orphans that already failed to find a parent (probe again each
        #: round, but the re-init fallback fires only on the first failure).
        self._unattachable: set[int] = set()
        self._newly_unattachable: set[int] = set()

    # -- root-reachability ----------------------------------------------------

    def _reachable(self) -> list[bool]:
        """Per-vertex: is the whole tree path to the root up right now?"""
        tree = self.net.tree
        ok = [False] * tree.num_vertices
        ok[tree.root] = True
        for vertex in tree.top_down_order:
            if vertex == tree.root:
                continue
            ok[vertex] = ok[tree.parent[vertex]] and not self.plan.is_down(vertex)
        return ok

    def reachable_sensors(self) -> tuple[int, ...]:
        """Up sensors whose whole path to the root is up."""
        ok = self._reachable()
        return tuple(v for v in self.net.tree.sensor_nodes if ok[v])

    # -- the per-round pass ---------------------------------------------------

    def repair_round(self, algorithm, values: np.ndarray) -> RepairRound:
        """Run one repair pass; call at round start (ledger round open).

        Order matters: re-attachments first (they restore connectivity, so
        their subtrees never need to be detached at all), then the
        membership diff against the post-repair reachable set.
        ``algorithm.detach``/``rejoin`` may raise
        :class:`~repro.errors.ProtocolError`; the internal membership set is
        updated *before* the algorithm hook so a driver that reacts by
        re-initializing can resynchronize via :meth:`resync_after_reinit`.
        """
        energy_before = float(self.net.ledger.energy.sum())
        reattached = self._reattach_orphans()
        fallback = self._first_time_fallbacks()
        detached, rejoined = self._sync_membership(algorithm, values)
        round_record = RepairRound(
            reattached=tuple(reattached),
            fallback=tuple(fallback),
            detached=tuple(detached),
            rejoined=tuple(rejoined),
        )
        if round_record.changed_membership and self.watchdog is not None:
            self.watchdog.retarget(self.net.tree, self.reachable_sensors())
        self.stats.reattach_count += len(reattached)
        self.stats.fallback_count += len(fallback)
        self.stats.detach_count += len(detached)
        self.stats.rejoin_count += len(rejoined)
        self.stats.repair_energy_j += (
            float(self.net.ledger.energy.sum()) - energy_before
        )
        self.stats.rounds.append(round_record)
        return round_record

    def resync_after_reinit(self, algorithm) -> None:
        """Align a freshly constructed algorithm with current reachability.

        Called by the driver right before re-initializing: the new query is
        planted on the reachable population only.
        """
        reachable = set(self.reachable_sensors())
        self.detached = set(self.net.tree.sensor_nodes) - reachable
        algorithm.reset_participation(self.net, self.detached)
        if self.watchdog is not None:
            self.watchdog.retarget(self.net.tree, tuple(sorted(reachable)))

    # -- orphan re-attach -----------------------------------------------------

    def _orphans(self) -> list[int]:
        """Up vertices whose tree parent is down, shallowest first."""
        tree = self.net.tree
        orphans = [
            v
            for v in tree.sensor_nodes
            if not self.plan.is_down(v) and self.plan.is_down(tree.parent[v])
        ]
        orphans.sort(key=lambda v: (tree.depth[v], v))
        return orphans

    def _reattach_orphans(self) -> list[tuple[int, int]]:
        reattached: list[tuple[int, int]] = []
        failed: set[int] = set()
        while True:
            pending = [v for v in self._orphans() if v not in failed]
            if not pending:
                break
            orphan = pending[0]
            candidate = self._probe_for_parent(orphan)
            if candidate is None:
                failed.add(orphan)
                continue
            self._adopt(orphan, candidate)
            reattached.append((orphan, candidate))
            self._unattachable.discard(orphan)
            # A successful adopt restores connectivity below the orphan, so
            # neighbours that found no live-path candidate before may now:
            # let them probe again this round (cascaded repairs).
            failed.clear()
        # Orphans whose parent recovered (or got re-attached) are no longer
        # orphans; forget them so a later relapse counts as a fresh failure.
        self._unattachable &= failed
        self._newly_unattachable = failed - self._unattachable
        return reattached

    def _first_time_fallbacks(self) -> list[int]:
        fresh = sorted(self._newly_unattachable)
        self._unattachable |= self._newly_unattachable
        self._newly_unattachable = set()
        return fresh

    def _probe_for_parent(self, orphan: int) -> int | None:
        """One probe beacon + replies; returns the nearest eligible neighbour.

        Eligible: physically in range, up, outside the orphan's own subtree,
        and with a fully-up tree path to the root.
        """
        tree = self.net.tree
        ack = ack_cost()
        # The probe is a local broadcast at full radio range; every up
        # neighbour pays the listen, but only neighbours that actually hold
        # a working route (and are not in the orphan's own subtree) answer
        # with an ack-sized beacon — nodes without a route to offer keep
        # quiet, exactly like route advertisements in CTP/RPL.
        self._charge_send(orphan, ack, self.graph.radio_range)
        subtree = frozenset(tree.subtree_vertices(orphan))
        reachable = self._reachable()
        best: int | None = None
        best_distance = float("inf")
        for neighbor in self.graph.neighbors(orphan):
            if neighbor != tree.root and self.plan.is_down(neighbor):
                continue
            self._charge_recv(neighbor, ack)
            if neighbor in subtree or not reachable[neighbor]:
                continue
            distance = self._distance(orphan, neighbor)
            self._charge_send(neighbor, ack, distance)
            self._charge_recv(orphan, ack)
            if distance < best_distance:
                best, best_distance = neighbor, distance
        return best

    def _adopt(self, orphan: int, new_parent: int) -> None:
        """Adopt handshake, tree rewrite, and membership report to the root."""
        distance = self._distance(orphan, new_parent)
        ack = ack_cost()
        # Adopt request / accept, both ack-sized control frames.
        self._charge_send(orphan, ack, distance)
        self._charge_recv(new_parent, ack)
        self._charge_send(new_parent, ack, distance)
        self._charge_recv(orphan, ack)
        new_tree = tree_reparented(self.net.tree, orphan, new_parent, distance)
        self.net.retarget(new_tree)
        # The adopting parent reports the membership change up the (new)
        # tree so the root can patch its branch bookkeeping.
        self._report_to_root(new_parent)

    # -- membership sync ------------------------------------------------------

    def _sync_membership(
        self, algorithm, values: np.ndarray
    ) -> tuple[list[int], list[int]]:
        tree = self.net.tree
        ok = self._reachable()
        reachable = {v for v in tree.sensor_nodes if ok[v]}
        newly_gone = sorted(
            v
            for v in tree.sensor_nodes
            if v not in self.detached and v not in reachable
        )
        newly_back = sorted(v for v in self.detached if v in reachable)

        for vertex in newly_gone:
            # A down node's silence is noticed by its parent; the report can
            # only travel where an up path exists.
            reporter = tree.parent[vertex]
            if reporter == tree.root or (
                reporter >= 0 and ok[reporter]
            ):
                self._report_to_root(reporter)
            self.detached.add(vertex)
            algorithm.detach(self.net, vertex)

        for vertex in newly_back:
            # Filter re-push (one hop down), then the node reports its
            # current value up so the root can patch its counters.
            push = message_bits(VALUE_BITS)
            parent = tree.parent[vertex]
            self._charge_send(parent, push, tree.link_distance[vertex])
            self._charge_recv(vertex, push)
            self._report_to_root(vertex)
            self.detached.discard(vertex)
            algorithm.rejoin(self.net, values, vertex)
        return newly_gone, newly_back

    # -- charging helpers -----------------------------------------------------

    def _distance(self, a: int, b: int) -> float:
        pa, pb = self.graph.positions[a], self.graph.positions[b]
        return float(np.hypot(pa[0] - pb[0], pa[1] - pb[1]))

    def _charge_send(self, sender: int, cost: MessageCost, distance: float) -> None:
        self.net.ledger.charge_send(sender, cost, link_distance=distance)
        self._account_bits(cost)

    def _charge_recv(self, receiver: int, cost: MessageCost) -> None:
        self.net.ledger.charge_recv(receiver, cost)

    def _report_to_root(self, start: int) -> None:
        """Report a membership change from ``start`` up the tree path.

        Membership reports are tiny (a vertex id and a flag) and ride
        piggybacked on the next already-scheduled frame of each hop, so they
        cost their payload bits but no extra MAC frames or headers.
        """
        if start == self.net.tree.root:
            return
        tree = self.net.tree
        cost = MessageCost(messages=0, total_bits=VALUE_BITS, payload_bits=VALUE_BITS)
        path = tree.path_to_root(start)
        for child, parent in zip(path, path[1:]):
            self._charge_send(child, cost, tree.link_distance[child])
            self._charge_recv(parent, cost)

    def _account_bits(self, cost: MessageCost) -> None:
        self.stats.repair_bits += cost.total_bits
        phase_bits = self.net.phase_bits
        phase_bits[REPAIR_PHASE] = phase_bits.get(REPAIR_PHASE, 0) + cost.total_bits
