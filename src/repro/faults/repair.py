"""Tree repair: orphan re-attach and transient-churn membership patching.

PR 2's recovery story was all-or-nothing: a silent subtree could only be
*re-initialized* — the most expensive reaction the energy model knows.
This module adds the reactions a real deployment uses first:

* **Orphan re-attach** — when a vertex's tree parent goes down, the vertex
  probes its physical neighbourhood (one beacon, every up neighbour answers)
  and re-attaches its whole subtree to the best up neighbour that still
  has a fully-up path to the root and lies outside its own subtree.  "Best"
  defaults to the lowest ETX-weighted path cost to the root (the shared
  :class:`~repro.network.linkstats.LinkQualityEstimator` the ARQ layer
  feeds), falling back to plain Euclidean distance while no link has ever
  been observed — or always, with ``parent_metric="nearest"`` (the PR 3
  behaviour, kept as the comparison baseline).  All of a round's adoptions
  are applied with one batched tree rewrite
  (:func:`~repro.network.tree.tree_multi_reparented`), the engine swaps it
  in (:meth:`~repro.sim.engine.TreeNetwork.retarget`), and the adopting
  parents report the membership change up to the root.

* **Multi-round partition healing (the parked-orphan queue)** — an orphan
  with *no* eligible candidate is not re-initialized on the spot anymore.
  It is *parked*: its subtree leaves the query (detached below), its radios
  drop to a duty-cycled listen window (one ACK-sized receive per up subtree
  vertex per parked round, charged to the ledger), and it re-probes on
  every subsequent round with freshly ETX-ranked candidates as links and
  neighbours recover.  Only after ``heal_patience`` consecutive failed
  rounds does the driver fall back to the watchdog-style re-initialization
  (``heal_patience=1`` reproduces the old same-round re-init cliff).  A
  parked orphan that finds a parent in a later round — or whose original
  parent comes back — is a *healed partition*: its sensors rejoin the
  running query with their filters intact, no re-initialization needed.

* **Membership patching (detach / rejoin)** — the root tracks which sensors
  can currently report (up + connected).  Nodes that leave (death, outage,
  unreachable orphan) are *detached*: the algorithm moves their last-known
  interval label out of its counters and shrinks ``k``'s population instead
  of restarting the query.  Nodes that come back are *rejoined*: the parent
  re-pushes the current filter (one hop), the node reports its value up,
  and the root moves the label back in.  Validation filters and intervals
  survive; on a loss-free network the answers stay exactly the live
  population's quantile through arbitrary churn.

All repair traffic — probe beacons, neighbour replies, the adopt handshake,
membership reports and filter re-pushes — is charged to the energy ledger
under the ``"repair"`` phase, so ``repro faults`` can show what recovery
actually costs next to what it saves.

The root's membership view is modelled as consistent at the end of each
repair pass (link-layer hello detection plus membership reports); reports
are only charged where an up reporting path exists.  The watchdog is
retargeted on every membership change so it awaits exactly the branches
that can still deliver — this is what stops a subtree repaired during a
watchdog grace window from being re-initialized on top (and double-charged).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import VALUE_BITS
from repro.errors import ConfigurationError
from repro.faults.network import FaultyTreeNetwork
from repro.faults.watchdog import RootWatchdog
from repro.network.topology import PhysicalGraph
from repro.network.tree import tree_multi_reparented
from repro.radio.message import MessageCost, ack_cost, message_bits

#: Phase label repair traffic is charged under in ``net.phase_bits``.
REPAIR_PHASE = "repair"


@dataclass(frozen=True)
class RepairRound:
    """What one repair pass did at the start of a round."""

    #: ``(orphan, new_parent)`` re-attachments performed, in order.
    reattached: tuple[tuple[int, int], ...] = ()
    #: Orphans whose ``heal_patience`` expired this round (the driver
    #: schedules the watchdog-style re-initialization fallback).
    fallback: tuple[int, ...] = ()
    #: Vertices detached from the query this round.
    detached: tuple[int, ...] = ()
    #: Vertices rejoined to the query this round.
    rejoined: tuple[int, ...] = ()
    #: Orphans parked at the end of this round (cut off, duty-cycled,
    #: awaiting a candidate parent on a later round's re-probe).
    parked: tuple[int, ...] = ()
    #: Previously parked orphans whose partition healed this round (a
    #: re-probe found a parent, or the old parent recovered).
    healed: tuple[int, ...] = ()

    @property
    def changed_membership(self) -> bool:
        return bool(self.reattached or self.detached or self.rejoined)


@dataclass
class RepairStats:
    """Cumulative repair activity over a run."""

    reattach_count: int = 0
    fallback_count: int = 0
    detach_count: int = 0
    rejoin_count: int = 0
    #: Probe beacons broadcast by orphans looking for a parent.
    probe_count: int = 0
    #: Orphan-rounds spent parked (cut off, duty-cycled, re-probing).
    parked_rounds: int = 0
    #: Parked orphans whose partition healed on a later round.
    healed_count: int = 0
    #: Total energy [J] spent on repair traffic (probes, adopts, reports).
    repair_energy_j: float = 0.0
    #: On-air bits of repair traffic.
    repair_bits: int = 0
    #: Per-round records, in order.
    rounds: list[RepairRound] = field(default_factory=list)


class TreeRepair:
    """Per-round tree repair and membership maintenance for one network.

    Args:
        graph: the physical connectivity graph (candidate parents must be
            within radio range ``rho``).
        net: the fault-injecting network whose tree is repaired in place.
        watchdog: optional root watchdog to retarget on membership changes.
        parent_metric: how an orphan ranks its candidate parents —
            ``"etx"`` (default) by ETX-weighted path cost to the root using
            the network's shared link-quality estimator (Euclidean distance
            breaks ties and takes over entirely while no relevant link has
            ever been observed), or ``"nearest"`` for the pure
            nearest-neighbour adoption of PR 3.
        heal_patience: consecutive rounds an unattachable orphan stays
            *parked* (duty-cycled, re-probing) before the re-initialization
            fallback fires.  The default 1 reproduces the pre-healing
            same-round fallback; higher values trade degraded coverage for
            the chance that the partition heals on its own.
    """

    #: Valid ``parent_metric`` values.
    PARENT_METRICS = ("etx", "nearest")

    def __init__(
        self,
        graph: PhysicalGraph,
        net: FaultyTreeNetwork,
        watchdog: RootWatchdog | None = None,
        parent_metric: str = "etx",
        heal_patience: int = 1,
    ) -> None:
        if graph.num_vertices != net.tree.num_vertices:
            raise ConfigurationError(
                f"graph has {graph.num_vertices} vertices but tree has "
                f"{net.tree.num_vertices}"
            )
        if parent_metric not in self.PARENT_METRICS:
            raise ConfigurationError(
                f"parent_metric must be one of {self.PARENT_METRICS}, "
                f"got {parent_metric!r}"
            )
        if heal_patience < 1:
            raise ConfigurationError(
                f"heal_patience must be >= 1, got {heal_patience}"
            )
        self.graph = graph
        self.net = net
        self.watchdog = watchdog
        self.parent_metric = parent_metric
        self.heal_patience = heal_patience
        self.plan = net.plan
        self.stats = RepairStats()
        #: Sensors the root currently considers outside the query.
        self.detached: set[int] = set()
        #: The parked-orphan queue: orphan -> consecutive rounds it has
        #: failed to find a parent.  Parked orphans re-probe every round;
        #: the re-init fallback fires once, when the streak reaches
        #: ``heal_patience``.  An entry disappears when the partition heals
        #: (re-attach, or the old parent recovers).
        self._parked: dict[int, int] = {}
        self._expired: list[int] = []
        self._waiting: list[int] = []
        self._healed: list[int] = []

    # -- root-reachability ----------------------------------------------------

    def _reachable(self) -> list[bool]:
        """Per-vertex: is the whole tree path to the root up right now?"""
        tree = self.net.tree
        ok = [False] * tree.num_vertices
        ok[tree.root] = True
        for vertex in tree.top_down_order:
            if vertex == tree.root:
                continue
            ok[vertex] = ok[tree.parent[vertex]] and not self.plan.is_down(vertex)
        return ok

    def reachable_sensors(self) -> tuple[int, ...]:
        """Up sensors whose whole path to the root is up."""
        ok = self._reachable()
        return tuple(v for v in self.net.tree.sensor_nodes if ok[v])

    # -- the per-round pass ---------------------------------------------------

    def repair_round(self, algorithm, values: np.ndarray) -> RepairRound:
        """Run one repair pass; call at round start (ledger round open).

        Order matters: re-attachments first (they restore connectivity, so
        their subtrees never need to be detached at all), then the
        membership diff against the post-repair reachable set.
        ``algorithm.detach``/``rejoin`` may raise
        :class:`~repro.errors.ProtocolError`; the internal membership set is
        updated *before* the algorithm hook so a driver that reacts by
        re-initializing can resynchronize via :meth:`resync_after_reinit`.
        """
        energy_before = float(self.net.ledger.energy.sum())
        reattached = self._reattach_orphans()
        fallback = self._expired_fallbacks()
        detached, rejoined = self._sync_membership(algorithm, values)
        round_record = RepairRound(
            reattached=tuple(reattached),
            fallback=tuple(fallback),
            detached=tuple(detached),
            rejoined=tuple(rejoined),
            parked=tuple(self._waiting),
            healed=tuple(self._healed),
        )
        if round_record.changed_membership and self.watchdog is not None:
            self.watchdog.retarget(self.net.tree, self.reachable_sensors())
        self.stats.reattach_count += len(reattached)
        self.stats.fallback_count += len(fallback)
        self.stats.detach_count += len(detached)
        self.stats.rejoin_count += len(rejoined)
        self.stats.parked_rounds += len(round_record.parked)
        self.stats.healed_count += len(round_record.healed)
        self.stats.repair_energy_j += (
            float(self.net.ledger.energy.sum()) - energy_before
        )
        self.stats.rounds.append(round_record)
        return round_record

    def resync_after_reinit(self, algorithm) -> None:
        """Align a freshly constructed algorithm with current reachability.

        Called by the driver right before re-initializing: the new query is
        planted on the reachable population only.
        """
        reachable = set(self.reachable_sensors())
        self.detached = set(self.net.tree.sensor_nodes) - reachable
        algorithm.reset_participation(self.net, self.detached)
        if self.watchdog is not None:
            self.watchdog.retarget(self.net.tree, tuple(sorted(reachable)))

    # -- orphan re-attach -----------------------------------------------------
    #
    # The whole pass works on *working copies* of the parent/link arrays:
    # adoptions mutate the copies, eligibility checks walk them, and the
    # real RoutingTree is rebuilt exactly once per round via
    # tree_multi_reparented (a cascade of k adoptions used to pay k full
    # O(n) derived-structure rebuilds — quadratic in the cascade size).

    def _orphans_in(self, parent: list[int]) -> list[int]:
        """Up sensors whose (working) parent is down, shallowest first."""
        orphans = [
            v
            for v in self.net.tree.sensor_nodes
            if not self.plan.is_down(v) and self.plan.is_down(parent[v])
        ]
        orphans.sort(key=lambda v: (self._depth_in(parent, v), v))
        return orphans

    def _depth_in(self, parent: list[int], vertex: int) -> int:
        root, depth = self.net.tree.root, 0
        while vertex != root:
            vertex = parent[vertex]
            depth += 1
        return depth

    def _in_subtree(self, parent: list[int], vertex: int, ancestor: int) -> bool:
        """Whether ``vertex`` lies in ``ancestor``'s (working) subtree."""
        root = self.net.tree.root
        while True:
            if vertex == ancestor:
                return True
            if vertex == root:
                return False
            vertex = parent[vertex]

    def _path_up_ok(self, parent: list[int], vertex: int) -> bool:
        """Whether the whole (working) path from ``vertex`` to the root is up."""
        root = self.net.tree.root
        while vertex != root:
            if self.plan.is_down(vertex):
                return False
            vertex = parent[vertex]
        return True

    def _subtree_in(self, parent: list[int], vertex: int) -> frozenset[int]:
        """All vertices of ``vertex``'s subtree under the working array."""
        root = self.net.tree.root
        children: dict[int, list[int]] = {}
        for v in range(len(parent)):
            if v != root:
                children.setdefault(parent[v], []).append(v)
        out: set[int] = set()
        stack = [vertex]
        while stack:
            v = stack.pop()
            out.add(v)
            stack.extend(children.get(v, ()))
        return frozenset(out)

    def _reattach_orphans(self) -> list[tuple[int, int]]:
        tree = self.net.tree
        parent = list(tree.parent)
        link = list(tree.link_distance)
        moves: list[tuple[int, int, float]] = []
        failed: set[int] = set()
        while True:
            pending = [v for v in self._orphans_in(parent) if v not in failed]
            if not pending:
                break
            orphan = pending[0]
            candidate = self._probe_for_parent(orphan, parent)
            if candidate is None:
                failed.add(orphan)
                continue
            distance = self._distance(orphan, candidate)
            self._charge_adopt_handshake(orphan, candidate, distance)
            if failed:
                # A successful adopt restores root connectivity for exactly
                # the orphan's subtree; a previously failed orphan can only
                # have gained an eligible candidate if it physically
                # neighbours that subtree.  Everyone else's probe would
                # replay the identical (charged!) beacon exchange and fail
                # identically — don't re-probe them.
                reconnected = self._subtree_in(parent, orphan)
                failed = {
                    v
                    for v in failed
                    if not any(
                        n in reconnected for n in self.graph.neighbors(v)
                    )
                }
            parent[orphan] = candidate
            link[orphan] = distance
            moves.append((orphan, candidate, distance))
        if moves:
            self.net.retarget(tree_multi_reparented(tree, moves))
            # The adopting parents report the membership change up the
            # repaired tree so the root can patch its branch bookkeeping.
            for _, new_parent, _ in moves:
                self._report_to_root(new_parent)
        self._settle_park_queue(parent, failed)
        return [(orphan, new_parent) for orphan, new_parent, _ in moves]

    def _settle_park_queue(self, parent: list[int], failed: set[int]) -> None:
        """Advance the parked-orphan queue after one re-attach pass.

        A previously waiting orphan (streak below ``heal_patience``) that is
        no longer cut — its re-probe found a parent, or the old parent
        recovered — is a healed partition.  Still-failed orphans advance
        their streak: the re-init fallback fires exactly when the streak
        reaches ``heal_patience``; below that the orphan waits parked, its
        subtree's up vertices each paying one duty-cycled ACK-sized listen
        window per round.  Past the fallback the orphan keeps re-probing
        (pre-healing behaviour) but is neither re-charged nor re-counted.
        Reconnected orphans leave the queue entirely, so a later relapse
        counts as a fresh failure.
        """
        previously_waiting = {
            v for v, streak in self._parked.items() if streak < self.heal_patience
        }
        self._healed = sorted(v for v in previously_waiting if v not in failed)
        for vertex in set(self._parked) - failed:
            del self._parked[vertex]
        self._expired, self._waiting = [], []
        for vertex in sorted(failed):
            streak = self._parked.get(vertex, 0) + 1
            self._parked[vertex] = streak
            if streak == self.heal_patience:
                self._expired.append(vertex)
            elif streak < self.heal_patience:
                self._waiting.append(vertex)
        ack = ack_cost()
        for vertex in self._waiting:
            for member in self._subtree_in(parent, vertex):
                if not self.plan.is_down(member):
                    self._charge_recv(member, ack)

    def _expired_fallbacks(self) -> list[int]:
        fresh = self._expired
        self._expired = []
        return fresh

    def _probe_for_parent(self, orphan: int, parent: list[int]) -> int | None:
        """One probe beacon + replies; returns the best eligible neighbour.

        Eligible: physically in range, up, outside the orphan's own
        (working) subtree, and with a fully-up tree path to the root.
        Ranking follows :attr:`parent_metric` — ETX-weighted path cost to
        the root when link estimates exist, Euclidean distance otherwise.
        """
        root = self.net.tree.root
        ack = ack_cost()
        # The probe is a local broadcast at full radio range; every up
        # neighbour pays the listen, but only neighbours that actually hold
        # a working route (and are not in the orphan's own subtree) answer
        # with an ack-sized beacon — nodes without a route to offer keep
        # quiet, exactly like route advertisements in CTP/RPL.
        self.stats.probe_count += 1
        self._charge_send(orphan, ack, self.graph.radio_range)
        stats = self.net.link_stats if self.parent_metric == "etx" else None
        candidates: list[tuple[float, float, int, bool]] = []
        for neighbor in self.graph.neighbors(orphan):
            if neighbor != root and self.plan.is_down(neighbor):
                continue
            self._charge_recv(neighbor, ack)
            if self._in_subtree(parent, neighbor, orphan) or not (
                self._path_up_ok(parent, neighbor)
            ):
                continue
            distance = self._distance(orphan, neighbor)
            self._charge_send(neighbor, ack, distance)
            self._charge_recv(orphan, ack)
            if stats is None:
                etx_cost, observed = 0.0, False
            else:
                etx_cost, observed = self._etx_path_cost(
                    stats, parent, orphan, neighbor
                )
            candidates.append((etx_cost, distance, neighbor, observed))
        if not candidates:
            return None
        if stats is not None and any(observed for *_, observed in candidates):
            best = min(candidates)
        else:
            # No relevant link ever observed: ETX would just replay the
            # prior everywhere, so fall back to nearest-neighbour adoption.
            best = min(candidates, key=lambda c: (c[1], c[2]))
        return best[2]

    def _etx_path_cost(
        self,
        stats,
        parent: list[int],
        orphan: int,
        candidate: int,
    ) -> tuple[float, bool]:
        """ETX of the probe link plus the candidate's (working) path to root.

        Also reports whether *any* link on that route has ever been
        observed — if none has, the cost is pure prior and the caller
        prefers the distance ranking instead.
        """
        root = self.net.tree.root
        cost = stats.etx(orphan, candidate)
        observed = stats.link_observed(orphan, candidate)
        vertex = candidate
        while vertex != root:
            up = parent[vertex]
            cost += stats.etx(vertex, up)
            observed = observed or stats.link_observed(vertex, up)
            vertex = up
        return cost, observed

    def _charge_adopt_handshake(
        self, orphan: int, new_parent: int, distance: float
    ) -> None:
        """Adopt request / accept, both ack-sized control frames."""
        ack = ack_cost()
        self._charge_send(orphan, ack, distance)
        self._charge_recv(new_parent, ack)
        self._charge_send(new_parent, ack, distance)
        self._charge_recv(orphan, ack)

    # -- membership sync ------------------------------------------------------

    def _sync_membership(
        self, algorithm, values: np.ndarray
    ) -> tuple[list[int], list[int]]:
        tree = self.net.tree
        ok = self._reachable()
        reachable = {v for v in tree.sensor_nodes if ok[v]}
        newly_gone = sorted(
            v
            for v in tree.sensor_nodes
            if v not in self.detached and v not in reachable
        )
        newly_back = sorted(v for v in self.detached if v in reachable)

        for vertex in newly_gone:
            # A down node's silence is noticed by its parent; the report can
            # only travel where an up path exists.
            reporter = tree.parent[vertex]
            if reporter == tree.root or (
                reporter >= 0 and ok[reporter]
            ):
                self._report_to_root(reporter)
            self.detached.add(vertex)
            algorithm.detach(self.net, vertex)

        for vertex in newly_back:
            # Filter re-push (one hop down), then the node reports its
            # current value up so the root can patch its counters.
            push = message_bits(VALUE_BITS)
            parent = tree.parent[vertex]
            self._charge_send(parent, push, tree.link_distance[vertex])
            self._charge_recv(vertex, push)
            self._report_to_root(vertex)
            self.detached.discard(vertex)
            algorithm.rejoin(self.net, values, vertex)
        return newly_gone, newly_back

    # -- charging helpers -----------------------------------------------------

    def _distance(self, a: int, b: int) -> float:
        pa, pb = self.graph.positions[a], self.graph.positions[b]
        return float(np.hypot(pa[0] - pb[0], pa[1] - pb[1]))

    def _charge_send(self, sender: int, cost: MessageCost, distance: float) -> None:
        self.net.ledger.charge_send(sender, cost, link_distance=distance)
        self._account_bits(cost)

    def _charge_recv(self, receiver: int, cost: MessageCost) -> None:
        self.net.ledger.charge_recv(receiver, cost)

    def _report_to_root(self, start: int) -> None:
        """Report a membership change from ``start`` up the tree path.

        Membership reports are tiny (a vertex id and a flag) and ride
        piggybacked on the next already-scheduled frame of each hop, so they
        cost their payload bits but no extra MAC frames or headers.
        """
        if start == self.net.tree.root:
            return
        tree = self.net.tree
        cost = MessageCost(messages=0, total_bits=VALUE_BITS, payload_bits=VALUE_BITS)
        path = tree.path_to_root(start)
        for child, parent in zip(path, path[1:]):
            self._charge_send(child, cost, tree.link_distance[child])
            self._charge_recv(parent, cost)

    def _account_bits(self, cost: MessageCost) -> None:
        self.stats.repair_bits += cost.total_bits
        phase_bits = self.net.phase_bits
        phase_bits[REPAIR_PHASE] = phase_bits.get(REPAIR_PHASE, 0) + cost.total_bits
