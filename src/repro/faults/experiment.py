"""The fault study: accuracy, recovery and energy under injected faults.

This generalizes the old ``extensions/loss.py`` experiment (which covered
only the exact algorithms under i.i.d. convergecast loss) along three axes:

* **algorithms** — every algorithm runs, including the sketch track
  (``SK1``/``SKQ``), whose rank bounds widen gracefully when subtrees go
  missing instead of silently pretending full coverage;
* **faults** — i.i.d. loss, Gilbert–Elliott burst loss and permanent node
  churn, all through one :class:`~repro.faults.plan.FaultPlan`;
* **recovery** — per-hop ARQ (:class:`~repro.faults.network.ArqPolicy`)
  with energy charged per attempt, and a root-side
  :class:`~repro.faults.watchdog.RootWatchdog` that turns protocol
  breakdowns and silent subtrees into *measured* re-initializations (the
  TAG re-init broadcast + convergecast is charged to the ledger in the
  round it happens) instead of unhandled exceptions.

Per (algorithm, loss rate, retry budget) cell the study reports the
exact-answer fraction, mean rank/value error against the *live* population,
protocol-failure and re-initialization counts, full-collection delivery
coverage, and the hotspot (max per-node mean round) energy — the columns
``repro faults`` and ``benchmarks/bench_faults.py`` print.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import SyntheticWorkload
from repro.errors import ProtocolError
from repro.experiments.config import AlgorithmFactory, sketch_algorithms
from repro.faults.network import ArqPolicy, FaultyTreeNetwork
from repro.faults.plan import (
    FaultPlan,
    GilbertElliottLoss,
    IndependentLoss,
    LinkLossModel,
    RandomChurn,
)
from repro.faults.watchdog import RootWatchdog
from repro.network.routing import build_routing_tree
from repro.network.topology import connected_random_graph
from repro.network.tree import RoutingTree
from repro.radio.energy import EnergyModel
from repro.radio.ledger import EnergyLedger
from repro.sim.oracle import exact_quantile, quantile_rank
from repro.types import QuerySpec


def insertion_rank_error(sensor_values: np.ndarray, answer: int, k: int) -> int:
    """Distance between k and the closest true rank the answer occupies.

    If the reported value does not occur in the network at all, the error is
    measured against the rank it *would* take if inserted.
    """
    less = int((sensor_values < answer).sum())
    equal = int((sensor_values == answer).sum())
    low_rank, high_rank = less + 1, max(less + equal, less + 1)
    if low_rank <= k <= high_rank:
        return 0
    if k < low_rank:
        return low_rank - k
    return k - high_rank


def fault_lineup(sketch_eps: float = 0.05) -> dict[str, AlgorithmFactory]:
    """All exact algorithms plus both sketch variants at one error budget."""
    from repro.experiments.config import default_algorithms

    lineup = default_algorithms()
    lineup.update(
        sketch_algorithms((sketch_eps,), kind="qdigest", gated=True, one_shot=True)
    )
    return lineup


@dataclass(frozen=True)
class FaultSeriesPoint:
    """Per-(algorithm, loss rate, retry budget) outcome of the fault study."""

    algorithm: str
    loss_rate: float
    retries: int
    churn_rate: float
    rounds: int
    exact_fraction: float
    mean_rank_error: float
    mean_value_error: float
    #: Query re-initializations actually executed (and charged).
    reinit_count: int
    #: Fraction of rounds whose protocol state broke down (exceptions).
    failure_rate: float
    #: Mean delivered coverage over full-collection convergecasts.
    delivered_fraction: float
    #: Max per-sensor mean round energy [mJ] — the hotspot that dies first.
    hotspot_energy_mj: float
    lost_transmissions: int
    retransmissions: int
    #: Sensors still alive after the last round (== all without churn).
    survivors: int


@dataclass
class FaultExperimentResult:
    """All cells of the fault study."""

    points: list[FaultSeriesPoint]

    def series(self, algorithm: str) -> list[FaultSeriesPoint]:
        """One algorithm's cells, ordered by (loss rate, retry budget)."""
        selected = [p for p in self.points if p.algorithm == algorithm]
        return sorted(selected, key=lambda p: (p.loss_rate, p.retries))

    def cell(
        self, algorithm: str, loss_rate: float, retries: int
    ) -> FaultSeriesPoint:
        """The single cell for one (algorithm, loss, retries) setting."""
        for point in self.points:
            if (
                point.algorithm == algorithm
                and point.loss_rate == loss_rate
                and point.retries == retries
            ):
                return point
        raise KeyError(f"no cell ({algorithm!r}, {loss_rate}, {retries})")


def run_fault_experiment(
    algorithms: dict[str, AlgorithmFactory],
    loss_rates: tuple[float, ...] = (0.0, 0.05, 0.1),
    retry_budgets: tuple[int, ...] = (0, 2),
    churn_rate: float = 0.0,
    burst_length: float | None = None,
    num_nodes: int = 100,
    num_rounds: int = 60,
    radio_range: float = 35.0,
    seed: int = 20140324,
    watchdog_patience: int = 2,
) -> FaultExperimentResult:
    """Sweep every algorithm over loss rates x retry budgets.

    The deployment and workload are seeded per loss rate only, so all
    algorithms *and all retry budgets* at one loss rate face the identical
    network and measurement series — the retry axis isolates the ARQ
    effect.  ``burst_length`` switches the loss process from i.i.d. to a
    Gilbert–Elliott chain matched to the same average rate.
    """
    points: list[FaultSeriesPoint] = []
    for loss in loss_rates:
        loss_key = int(round(loss * 10_000))
        for retries in retry_budgets:
            for name, factory in algorithms.items():
                deploy_rng = np.random.default_rng((seed, loss_key))
                graph = connected_random_graph(
                    num_nodes + 1, radio_range, deploy_rng
                )
                tree = build_routing_tree(graph, root=0)
                workload = SyntheticWorkload(graph.positions, deploy_rng)
                spec = QuerySpec(r_min=workload.r_min, r_max=workload.r_max)
                fault_rng = np.random.default_rng(
                    (seed, loss_key, retries, 7)
                )
                plan = FaultPlan(
                    loss=_loss_model(loss, burst_length),
                    churn=RandomChurn(churn_rate) if churn_rate > 0 else None,
                    rng=fault_rng,
                )
                points.append(
                    _run_one(
                        name,
                        factory,
                        spec,
                        tree,
                        workload,
                        plan,
                        ArqPolicy(max_retries=retries),
                        loss,
                        churn_rate,
                        num_rounds,
                        radio_range,
                        watchdog_patience,
                    )
                )
    return FaultExperimentResult(points=points)


def _loss_model(loss: float, burst_length: float | None) -> LinkLossModel | None:
    if loss <= 0.0:
        return None
    if burst_length is None:
        return IndependentLoss(loss)
    return GilbertElliottLoss.from_average(loss, burst_length=burst_length)


def _run_one(
    name: str,
    factory: AlgorithmFactory,
    spec: QuerySpec,
    tree: RoutingTree,
    workload: SyntheticWorkload,
    plan: FaultPlan,
    arq: ArqPolicy,
    loss: float,
    churn_rate: float,
    num_rounds: int,
    radio_range: float,
    watchdog_patience: int,
) -> FaultSeriesPoint:
    ledger = EnergyLedger(tree.num_vertices, tree.root, EnergyModel(), radio_range)
    net = FaultyTreeNetwork(tree, ledger, plan=plan, arq=arq)
    watchdog = RootWatchdog(tree, patience=watchdog_patience)

    algorithm = factory(spec)
    needs_init = True
    last_answer: int | None = None
    exact = failures = reinits = 0
    rank_errors: list[int] = []
    value_errors: list[int] = []
    coverages: list[float] = []
    rounds_run = 0

    for round_index in range(num_rounds):
        net.begin_faults_round(round_index)
        live = net.live_sensor_nodes()
        if not live:
            break  # every sensor died; nothing left to query
        values = np.asarray(workload.values(round_index))
        ledger.begin_round()
        log_start = len(net.collection_log)
        reinitialized = False
        try:
            if needs_init:
                if round_index > 0:
                    algorithm = factory(spec)
                    reinits += 1
                    reinitialized = True
                outcome = algorithm.initialize(net, values)
                needs_init = False
            else:
                outcome = algorithm.update(net, values)
            last_answer = outcome.quantile
        except ProtocolError:
            # Loss/churn drove the protocol state into an impossible
            # configuration.  Re-synchronize from scratch *in this round*:
            # the re-init broadcast + convergecast is real traffic and is
            # charged to the open ledger round like everything else.
            failures += 1
            algorithm = factory(spec)
            try:
                outcome = algorithm.initialize(net, values)
                reinits += 1
                reinitialized = True
                needs_init = False
                last_answer = outcome.quantile
            except ProtocolError:
                needs_init = True  # even the re-init drowned; retry next round
        ledger.end_round()
        rounds_run += 1

        # Root-side watchdog: full collections tell the root who is gone.
        reinit_wanted = False
        full_records = [
            record
            for record in net.collection_log[log_start:]
            if watchdog.is_full_collection(record, len(live))
        ]
        for record in full_records:
            coverages.append(record.coverage)
        if full_records:
            if reinitialized:
                watchdog.adopt(full_records[-1])
            else:
                for record in full_records:
                    reinit_wanted |= watchdog.observe(record)
        if reinit_wanted:
            needs_init = True  # scheduled re-initialization, next round

        # Accuracy against the live population's quantile.
        live_values = values[list(live)]
        k_live = quantile_rank(len(live), spec.phi)
        truth = exact_quantile(live_values, k_live)
        answer = last_answer if last_answer is not None else truth
        exact += int(answer == truth)
        value_errors.append(abs(answer - truth))
        rank_errors.append(insertion_rank_error(live_values, answer, k_live))

    rounds_run = max(rounds_run, 1)
    return FaultSeriesPoint(
        algorithm=name,
        loss_rate=loss,
        retries=arq.max_retries,
        churn_rate=churn_rate,
        rounds=rounds_run,
        exact_fraction=exact / rounds_run,
        mean_rank_error=float(np.mean(rank_errors)) if rank_errors else 0.0,
        mean_value_error=float(np.mean(value_errors)) if value_errors else 0.0,
        reinit_count=reinits,
        failure_rate=failures / rounds_run,
        delivered_fraction=float(np.mean(coverages)) if coverages else 1.0,
        hotspot_energy_mj=ledger.max_mean_round_energy() * 1e3,
        lost_transmissions=net.lost_transmissions,
        retransmissions=net.retransmissions,
        survivors=len(net.live_sensor_nodes()),
    )


# -- legacy loss-study API (extensions/loss.py) ------------------------------


@dataclass
class LossSeriesPoint:
    """Per-(algorithm, loss-rate) outcome of the original loss study."""

    algorithm: str
    loss_probability: float
    exact_fraction: float
    mean_rank_error: float
    mean_value_error: float
    failure_rate: float


@dataclass
class LossExperimentResult:
    """All series of the loss study, keyed by algorithm name."""

    points: list[LossSeriesPoint]

    def series(self, algorithm: str) -> list[LossSeriesPoint]:
        """The loss sweep of one algorithm, ordered by loss rate."""
        selected = [p for p in self.points if p.algorithm == algorithm]
        return sorted(selected, key=lambda p: p.loss_probability)


def run_loss_experiment(
    algorithms: dict[str, AlgorithmFactory],
    loss_probabilities: tuple[float, ...] = (0.0, 0.01, 0.05, 0.1, 0.2),
    num_nodes: int = 100,
    num_rounds: int = 60,
    radio_range: float = 35.0,
    seed: int = 20140324,
) -> LossExperimentResult:
    """The original Section-6 study: rank error under i.i.d. loss, no ARQ.

    Now a thin view over :func:`run_fault_experiment` — same fault path,
    same recovery layer — narrowed to the retry-less, churn-free setting
    and the original result shape.
    """
    result = run_fault_experiment(
        algorithms,
        loss_rates=tuple(loss_probabilities),
        retry_budgets=(0,),
        num_nodes=num_nodes,
        num_rounds=num_rounds,
        radio_range=radio_range,
        seed=seed,
    )
    return LossExperimentResult(
        points=[
            LossSeriesPoint(
                algorithm=p.algorithm,
                loss_probability=p.loss_rate,
                exact_fraction=p.exact_fraction,
                mean_rank_error=p.mean_rank_error,
                mean_value_error=p.mean_value_error,
                failure_rate=p.failure_rate,
            )
            for p in result.points
        ]
    )
