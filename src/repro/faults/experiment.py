"""The fault study: accuracy, recovery and energy under injected faults.

This generalizes the old ``extensions/loss.py`` experiment (which covered
only the exact algorithms under i.i.d. convergecast loss) along three axes:

* **algorithms** — every algorithm runs, including the sketch track
  (``SK1``/``SKQ``), whose rank bounds widen gracefully when subtrees go
  missing instead of silently pretending full coverage;
* **faults** — i.i.d. loss, Gilbert–Elliott burst loss, permanent node
  churn and *transient outages* (nodes that go down and come back), all
  through one :class:`~repro.faults.plan.FaultPlan`;
* **recovery** — per-hop ARQ with a static or per-link *adaptive* retry
  budget (:class:`~repro.faults.network.ArqPolicy` /
  :class:`~repro.faults.network.AdaptiveArqPolicy`), energy charged per
  attempt; tree repair (:class:`~repro.faults.repair.TreeRepair`) that
  re-attaches orphaned subtrees and patches the query membership instead
  of restarting; and a root-side
  :class:`~repro.faults.watchdog.RootWatchdog` as the last resort, its
  re-initializations *measured* (the TAG re-init broadcast + convergecast
  is charged to the ledger in the round it happens) instead of unhandled
  exceptions.

The round loop lives in :class:`FaultDriver` so tests can drive it one
round at a time — the differential invariant harness in ``tests/helpers.py``
steps a driver and checks the root's answer against an oracle on every
*trustworthy* round (see :attr:`RoundReport.trustworthy`).

Per (algorithm, loss rate, retry budget) cell the study reports the
exact-answer fraction, mean rank/value error against the *live* population,
protocol-failure, re-initialization and re-attach counts, repair energy,
full-collection delivery coverage, and the hotspot (max per-node mean
round) energy — the columns ``repro faults`` and
``benchmarks/bench_faults.py`` print.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import VALUE_BITS
from repro.datasets.synthetic import SyntheticWorkload
from repro.errors import ConfigurationError, ProtocolError
from repro.experiments.config import AlgorithmFactory, sketch_algorithms
from repro.faults.network import (
    AdaptiveArqPolicy,
    ArqPolicy,
    FaultyTreeNetwork,
)
from repro.faults.failover import FailoverEvent, RootFailover
from repro.faults.plan import (
    CompositeChurn,
    FaultPlan,
    GilbertElliottLoss,
    IndependentLoss,
    LinkLossModel,
    RandomChurn,
    RandomOutages,
    ScheduledChurn,
)
from repro.faults.repair import RepairRound, TreeRepair
from repro.faults.watchdog import RootWatchdog
from repro.network.routing import (
    build_randomized_routing_tree,
    build_routing_tree,
)
from repro.network.topology import PhysicalGraph, connected_random_graph
from repro.network.tree import RoutingTree
from repro.radio.energy import EnergyModel
from repro.radio.ledger import EnergyLedger
from repro.sim.oracle import exact_quantile, quantile_rank
from repro.types import QuerySpec


def insertion_rank_error(sensor_values: np.ndarray, answer: int, k: int) -> int:
    """Distance between k and the closest true rank the answer occupies.

    If the reported value does not occur in the network at all, the error is
    measured against the rank it *would* take if inserted.
    """
    less = int((sensor_values < answer).sum())
    equal = int((sensor_values == answer).sum())
    low_rank, high_rank = less + 1, max(less + equal, less + 1)
    if low_rank <= k <= high_rank:
        return 0
    if k < low_rank:
        return low_rank - k
    return k - high_rank


def fault_lineup(sketch_eps: float = 0.05) -> dict[str, AlgorithmFactory]:
    """All exact algorithms plus both sketch variants at one error budget."""
    from repro.experiments.config import default_algorithms

    lineup = default_algorithms()
    lineup.update(
        sketch_algorithms((sketch_eps,), kind="qdigest", gated=True, one_shot=True)
    )
    return lineup


@dataclass(frozen=True)
class FaultSeriesPoint:
    """Per-(algorithm, loss rate, retry budget) outcome of the fault study."""

    algorithm: str
    loss_rate: float
    #: Static retry budget, or ``"adp"`` for the adaptive per-link policy.
    retries: int | str
    churn_rate: float
    rounds: int
    exact_fraction: float
    mean_rank_error: float
    mean_value_error: float
    #: Query re-initializations actually executed (and charged).
    reinit_count: int
    #: Fraction of rounds whose protocol state broke down (exceptions).
    failure_rate: float
    #: Mean delivered coverage over full-collection convergecasts.
    delivered_fraction: float
    #: Max per-sensor mean round energy [mJ] — the hotspot that dies first.
    hotspot_energy_mj: float
    lost_transmissions: int
    retransmissions: int
    #: Sensors not permanently dead after the last round.
    survivors: int
    #: Orphaned subtrees successfully re-attached by the repair layer.
    reattach_count: int = 0
    #: Watchdog re-initializations cancelled because a repair landed first.
    cancelled_reinits: int = 0
    #: Energy [mJ] spent on repair traffic (probes, adopts, reports).
    repair_energy_mj: float = 0.0
    #: Per-round probability of a transient outage starting.
    transient_rate: float = 0.0
    #: Tree rotations performed (load balancing under faults).
    rotations: int = 0
    #: Rounds served in DEGRADED state (no participating sensor; the root
    #: answered with the last trustworthy value, flagged untrustworthy).
    degraded_rounds: int = 0
    #: Parked orphans whose partition healed on a later round's re-probe
    #: (re-attached, or the old parent recovered) — re-inits avoided.
    healed_partitions: int = 0
    #: Orphan-rounds spent parked (duty-cycled, awaiting a heal).
    parked_orphan_rounds: int = 0
    #: Energy [mJ] spent on re-initialization rounds' traffic.
    reinit_energy_mj: float = 0.0
    #: Root fail-overs executed (successor elected, tree re-rooted).
    failovers: int = 0
    #: Energy [mJ] spent on fail-over traffic (election + state hand-over).
    failover_energy_mj: float = 0.0


@dataclass
class FaultExperimentResult:
    """All cells of the fault study."""

    points: list[FaultSeriesPoint]

    def series(self, algorithm: str) -> list[FaultSeriesPoint]:
        """One algorithm's cells, ordered by (loss rate, retry budget)."""
        selected = [p for p in self.points if p.algorithm == algorithm]
        return sorted(selected, key=lambda p: (p.loss_rate, str(p.retries)))

    def cell(
        self, algorithm: str, loss_rate: float, retries: int | str
    ) -> FaultSeriesPoint:
        """The single cell for one (algorithm, loss, retries) setting."""
        for point in self.points:
            if (
                point.algorithm == algorithm
                and point.loss_rate == loss_rate
                and point.retries == retries
            ):
                return point
        raise KeyError(f"no cell ({algorithm!r}, {loss_rate}, {retries})")


@dataclass(frozen=True)
class RoundReport:
    """What one driver round produced (for tests and invariant harnesses)."""

    round_index: int
    #: The root's answer this round (None only while initialization drowns
    #: or the run degrades before ever initializing).
    answer: int | None
    #: Sensors that are up this round.
    live: tuple[int, ...]
    #: Sensors the root's query currently covers (live minus detached).
    participating: tuple[int, ...]
    reinitialized: bool
    failed: bool
    #: The repair pass, when a repair layer is attached.
    repair: RepairRound | None
    #: True when the root's state is provably in sync: initialized, every
    #: convergecast since the last (re-)initialization delivered fully, no
    #: protocol failure this round, and the root's membership view matches
    #: physical reachability.  On trustworthy rounds an *exact* algorithm's
    #: answer must equal the oracle over the participating population.
    trustworthy: bool
    #: True when the query had no participating sensor this round: the
    #: algorithm did not run and ``answer`` is the last trustworthy answer
    #: the root still holds (stale by construction).
    degraded: bool = False
    #: Why the round degraded — ``"all-sensors-down"`` (nothing is up),
    #: ``"no-participants"`` (sensors are up but all detached, e.g. parked
    #: behind an unhealed partition), or ``"root-down"`` (the sink is lost
    #: and no fail-over could run yet: outage grace, or no live successor).
    #: ``None`` on normal rounds.
    degraded_reason: str | None = None
    #: The root fail-over executed this round, if any.
    failover: FailoverEvent | None = None


class FaultDriver:
    """One algorithm's round loop under a fault plan, steppable by tests.

    Owns the network, ledger, watchdog and (optionally) the tree-repair
    layer, and reproduces the recovery policy of the fault study:

    1. at round start the repair layer re-attaches orphans and patches the
       query membership (detach/rejoin);
    2. a repair fallback (orphan with no candidate parent) or a watchdog
       recommendation schedules a re-initialization; a successful re-attach
       *cancels* a pending watchdog re-init (the repair already fixed what
       the watchdog noticed);
    3. :class:`~repro.errors.ProtocolError` re-initializes immediately,
       charged in the same round;
    4. when churn leaves the query with *no* participating sensor the
       driver enters the DEGRADED state instead of raising: the algorithm
       is skipped, the root serves the last trustworthy answer
       (``RoundReport.degraded`` + reason, ``trustworthy=False``), and a
       re-initialization is scheduled so exact tracking resumes on its own
       as soon as any sensor becomes reachable again.  The loop stops only
       when every sensor is *permanently* dead.

    The coarse driver state is exposed as :attr:`state` — ``"init"``
    before the first successful initialization, then ``"tracking"`` or
    ``"degraded"`` per round.

    ``rotate_every`` adds fault-aware tree rotation on top: every that many
    rounds a fresh randomized min-hop tree is sampled over the *full* graph
    (currently-down vertices avoided as parents, sampling ETX-biased when
    ``repair_metric="etx"``) and swapped in without touching the algorithm —
    the continuous state is value-domain, so rotation needs no re-init, and
    membership (detached sensors) carries straight over.  Rotation runs
    before the repair pass, so a rotation that had no choice but to parent
    someone under a down vertex is patched by the same round's repair.
    """

    def __init__(
        self,
        factory: AlgorithmFactory,
        spec: QuerySpec,
        tree: RoutingTree,
        workload: SyntheticWorkload,
        plan: FaultPlan,
        arq: ArqPolicy | None = None,
        *,
        graph: PhysicalGraph | None = None,
        repair: bool = True,
        radio_range: float = 35.0,
        watchdog_patience: int = 2,
        repair_metric: str = "etx",
        rotate_every: int = 0,
        rotate_rng: np.random.Generator | None = None,
        heal_patience: int = 1,
        core: str | None = None,
        history=None,
        root_grace: int = 1,
        failover_rng: np.random.Generator | None = None,
    ) -> None:
        if rotate_every < 0:
            raise ConfigurationError(
                f"rotate_every must be >= 0, got {rotate_every}"
            )
        if rotate_every > 0 and graph is None:
            raise ConfigurationError(
                "tree rotation needs the physical graph (pass graph=...)"
            )
        self.factory = factory
        self.spec = spec
        self.workload = workload
        self.graph = graph
        #: Optional root-side :class:`~repro.serving.history.HistoryStore`
        #: (duck-typed to avoid a faults -> serving import cycle): when
        #: attached, every round report is absorbed as the history's
        #: ``__primary__`` track — degraded rounds advance its clock but
        #: never reach the summaries.
        self.history = history
        self.repair_metric = repair_metric
        self.rotate_every = rotate_every
        self._rotate_rng = (
            rotate_rng
            if rotate_rng is not None
            else np.random.default_rng(20140324)
        )
        self.rotations = 0
        self.ledger = EnergyLedger(
            tree.num_vertices, tree.root, EnergyModel(), radio_range
        )
        # ``core`` pins the simulation core (differential tests run the
        # same scenario on both); ``None`` keeps the env-var default.
        self.net = FaultyTreeNetwork(
            tree, self.ledger, plan=plan, arq=arq, core=core
        )
        self.watchdog = RootWatchdog(tree, patience=watchdog_patience)
        self.repair: TreeRepair | None = None
        if repair and graph is not None:
            self.repair = TreeRepair(
                graph,
                self.net,
                self.watchdog,
                parent_metric=repair_metric,
                heal_patience=heal_patience,
            )
        self.failover = RootFailover(
            self.net,
            graph,
            grace=root_grace,
            rng=(
                failover_rng
                if failover_rng is not None
                else np.random.default_rng(20140324)
            ),
        )
        #: Extra root-side state (beyond the algorithm's own) a successor
        #: sink must inherit on fail-over.  Each entry is a zero-argument
        #: callable returning a size in bits; the serving layer registers
        #: its history summaries and cached multi-query answers here.
        self.handover_state_providers: list = []
        if history is not None:
            self.handover_state_providers.append(self._history_handover_bits)
        self.algorithm = factory(spec)
        self.last_answer: int | None = None
        self.reinits = 0
        self.cancelled_reinits = 0
        self.failures = 0
        self.exact = 0
        self.rounds_run = 0
        self.degraded_rounds = 0
        self.reinit_energy_j = 0.0
        self.rank_errors: list[int] = []
        self.value_errors: list[int] = []
        self.coverages: list[float] = []
        self.state = "init"
        self._initialized = False
        self._scheduled_reinit = False
        self._tainted = False
        self._last_trustworthy_answer: int | None = None

    # -- membership views -----------------------------------------------------

    def participating(self, live: tuple[int, ...]) -> tuple[int, ...]:
        """Live sensors the root's query currently covers."""
        if self.repair is None:
            return live
        detached = self.repair.detached
        return tuple(v for v in live if v not in detached)

    def _history_handover_bits(self) -> int:
        """Serialized size [bits] of the root-side history summaries."""
        return VALUE_BITS * sum(
            self.history.size_items(query) for query in self.history.queries()
        )

    # -- fault-aware rotation -------------------------------------------------

    def _rotate(self) -> None:
        """Swap in a fresh randomized min-hop tree, faults taken into account.

        Down vertices are avoided as parents (not excluded — a vertex whose
        candidates are all down gets orphaned either way and the repair pass
        re-attaches or detaches it this same round), and with the ETX metric
        the parent sampling is biased away from links observed to drop
        frames.  The algorithm state is untouched: filters and counters are
        value-domain, so nodes merely adopt new parents.  The watchdog is
        retargeted because its branch bookkeeping refers to the old tree.
        """
        assert self.graph is not None
        root = self.net.tree.root
        avoid = frozenset(
            v
            for v in range(self.net.tree.num_vertices)
            if v != root and self.net.plan.is_down(v)
        )
        link_stats = (
            self.net.link_stats if self.repair_metric == "etx" else None
        )
        tree = build_randomized_routing_tree(
            self.graph,
            self._rotate_rng,
            root=root,
            link_stats=link_stats,
            avoid=avoid,
        )
        self.net.retarget(tree)
        self.rotations += 1
        members = (
            self.repair.reachable_sensors()
            if self.repair is not None
            else tree.sensor_nodes
        )
        self.watchdog.retarget(tree, members)

    # -- the round loop -------------------------------------------------------

    def step(self, round_index: int) -> RoundReport | None:
        """Run one round; ``None`` means every sensor is permanently dead.

        A round with *no participating sensor* (all down, or all detached
        behind unhealed partitions) is served in DEGRADED state: the
        algorithm is skipped, the root answers with the last trustworthy
        value, and a re-initialization is scheduled for the first round
        with anyone to plant the query on.
        """
        net = self.net
        net.begin_faults_round(round_index)
        plan = net.plan
        if all(plan.is_dead(v) for v in net.tree.sensor_nodes):
            # Permanent churn killed everyone; nothing can ever come back,
            # so there is no degraded service to provide — stop the loop.
            return None
        live = net.live_sensor_nodes()
        if (
            live
            and self.rotate_every
            and round_index
            and round_index % self.rotate_every == 0
        ):
            self._rotate()
        values = np.asarray(self.workload.values(round_index))
        self.ledger.begin_round()
        log_start = len(net.collection_log)
        failed = reinitialized = False
        degraded_reason: str | None = None
        repair_record: RepairRound | None = None
        # Root fail-over runs before the repair pass: repair's reachability
        # walk assumes a live root, and the old root's orphaned children
        # are picked up by this same round's ordinary repair.
        root_down_reason: str | None = None
        failover_event = self.failover.maybe_failover(
            round_index,
            self.algorithm,
            repair=self.repair,
            watchdog=self.watchdog,
            state_providers=self.handover_state_providers,
        )
        if failover_event is not None:
            # The sensor set changed (old sink demoted, successor
            # promoted) — recompute who is up on the new tree.
            live = net.live_sensor_nodes()
        elif self.failover.root_unavailable() is not None:
            # The sink is lost but no fail-over could run yet (outage
            # grace, or no live successor): nothing can collect or report
            # this round.
            root_down_reason = "root-down"
        try:
            if self.repair is not None and root_down_reason is None:
                repair_record = self.repair.repair_round(self.algorithm, values)
                if repair_record.fallback:
                    # An orphan's heal_patience expired with no parent in
                    # range: only a watchdog-style re-init resynchronizes.
                    self._scheduled_reinit = True
                elif self._scheduled_reinit and repair_record.reattached:
                    # The repair restored the very subtree the watchdog was
                    # complaining about — don't also re-initialize on top.
                    self._scheduled_reinit = False
                    self.cancelled_reinits += 1
            if root_down_reason is not None:
                # DEGRADED, but the continuous state is *not* stale logic:
                # the sensors kept their filters, the root its counters —
                # no re-init is scheduled.  Tracking resumes as soon as
                # the root recovers or a fail-over lands.
                degraded_reason = root_down_reason
            elif not self.participating(live):
                # DEGRADED: churn detached the last participating sensor
                # (or everyone is down).  Skip the algorithm — there is no
                # answerable rank — and re-initialize once someone is back.
                degraded_reason = (
                    "all-sensors-down" if not live else "no-participants"
                )
                self._scheduled_reinit = True
            elif not self._initialized or self._scheduled_reinit:
                if round_index > 0:
                    self.algorithm = self.factory(self.spec)
                    self.reinits += 1
                    reinitialized = True
                if self.repair is not None:
                    self.repair.resync_after_reinit(self.algorithm)
                energy_before = float(self.ledger.energy.sum())
                outcome = self.algorithm.initialize(net, values)
                if reinitialized:
                    self.reinit_energy_j += (
                        float(self.ledger.energy.sum()) - energy_before
                    )
                self._initialized = True
                self._scheduled_reinit = False
                self._tainted = False
                self.last_answer = outcome.quantile
            else:
                outcome = self.algorithm.update(net, values)
                self.last_answer = outcome.quantile
        except ProtocolError:
            # Loss/churn drove the protocol state into an impossible
            # configuration.  Re-synchronize from scratch *in this round*:
            # the re-init broadcast + convergecast is real traffic and is
            # charged to the open ledger round like everything else.
            failed = True
            self.failures += 1
            if not self.participating(live):
                # Even recovery has nobody to replant the query on.  Keep
                # the (broken) algorithm for membership patching, degrade,
                # and re-initialize when a sensor becomes reachable.
                degraded_reason = (
                    "all-sensors-down" if not live else "no-participants"
                )
                self._initialized = False
                self._scheduled_reinit = True
            else:
                self.algorithm = self.factory(self.spec)
                if self.repair is not None:
                    self.repair.resync_after_reinit(self.algorithm)
                try:
                    energy_before = float(self.ledger.energy.sum())
                    outcome = self.algorithm.initialize(net, values)
                    self.reinits += 1
                    reinitialized = True
                    self.reinit_energy_j += (
                        float(self.ledger.energy.sum()) - energy_before
                    )
                    self._initialized = True
                    self._scheduled_reinit = False
                    self._tainted = False
                    self.last_answer = outcome.quantile
                except ProtocolError:
                    self._scheduled_reinit = True  # even the re-init drowned
        self.ledger.end_round()
        self.rounds_run += 1

        degraded = degraded_reason is not None
        if degraded:
            self.degraded_rounds += 1
            if self._last_trustworthy_answer is not None:
                # Serve the last answer the root could still prove right.
                self.last_answer = self._last_trustworthy_answer
        participating = self.participating(live)
        round_records = net.collection_log[log_start:]
        if any(r.coverage < 1.0 for r in round_records if r.expected > 0):
            # Something since the last (re-)init failed to arrive — the
            # root's continuous state may have silently diverged.
            self._tainted = True

        # Root-side watchdog: full collections tell the root who is gone.
        # Degraded rounds run no collections, so there is nothing to watch.
        reinit_wanted = False
        if not degraded:
            full_records = [
                record
                for record in round_records
                if self.watchdog.is_full_collection(record, len(participating))
            ]
            self.coverages.extend(record.coverage for record in full_records)
            if full_records:
                if reinitialized:
                    self.watchdog.adopt(full_records[-1])
                else:
                    for record in full_records:
                        reinit_wanted |= self.watchdog.observe(record)
        if reinit_wanted:
            self._scheduled_reinit = True  # re-initialization, next round

        # Accuracy against the live population's quantile (undefined while
        # nobody is up — those rounds simply have no truth to score).
        if live:
            live_values = values[list(live)]
            k_live = quantile_rank(len(live), self.spec.phi)
            truth = exact_quantile(live_values, k_live)
            answer = self.last_answer if self.last_answer is not None else truth
            self.exact += int(answer == truth)
            self.value_errors.append(abs(answer - truth))
            self.rank_errors.append(
                insertion_rank_error(live_values, answer, k_live)
            )

        trustworthy = not degraded and self._trustworthy(failed, live)
        if trustworthy and self.last_answer is not None:
            self._last_trustworthy_answer = self.last_answer
        self.state = (
            "degraded"
            if degraded
            else ("tracking" if self._initialized else "init")
        )
        report = RoundReport(
            round_index=round_index,
            answer=self.last_answer,
            live=live,
            participating=participating,
            reinitialized=reinitialized,
            failed=failed,
            repair=repair_record,
            trustworthy=trustworthy,
            degraded=degraded,
            degraded_reason=degraded_reason,
            failover=failover_event,
        )
        if self.history is not None:
            self.history.absorb_report(report)
        return report

    def run(self, num_rounds: int) -> list[RoundReport]:
        """Run the full loop; stops early only if every sensor is dead.

        Transiently-down populations do *not* stop the loop anymore — those
        rounds are served degraded and tracking resumes on recovery.
        """
        reports: list[RoundReport] = []
        for round_index in range(num_rounds):
            report = self.step(round_index)
            if report is None:
                break
            reports.append(report)
        return reports

    def _trustworthy(self, failed: bool, live: tuple[int, ...]) -> bool:
        if failed or self._tainted or not self._initialized:
            return False
        if self._scheduled_reinit:
            return False
        plan = self.net.plan
        if self.repair is None:
            # Without a repair layer the root has no membership view at
            # all; only a completely fault-free network keeps it in sync.
            return not any(
                plan.is_down(v) for v in self.net.tree.sensor_nodes
            )
        return set(self.participating(live)) == set(
            self.repair.reachable_sensors()
        )

    def point(
        self,
        name: str,
        loss: float,
        churn_rate: float,
        transient_rate: float,
    ) -> FaultSeriesPoint:
        """Summarize the completed run as one study cell."""
        rounds_run = max(self.rounds_run, 1)
        plan = self.net.plan
        survivors = sum(
            1 for v in self.net.tree.sensor_nodes if not plan.is_dead(v)
        )
        repair_stats = self.repair.stats if self.repair is not None else None
        return FaultSeriesPoint(
            algorithm=name,
            loss_rate=loss,
            retries=self.net.arq.label,
            churn_rate=churn_rate,
            rounds=rounds_run,
            exact_fraction=self.exact / rounds_run,
            mean_rank_error=(
                float(np.mean(self.rank_errors)) if self.rank_errors else 0.0
            ),
            mean_value_error=(
                float(np.mean(self.value_errors)) if self.value_errors else 0.0
            ),
            reinit_count=self.reinits,
            failure_rate=self.failures / rounds_run,
            delivered_fraction=(
                float(np.mean(self.coverages)) if self.coverages else 1.0
            ),
            hotspot_energy_mj=self.ledger.max_mean_round_energy() * 1e3,
            lost_transmissions=self.net.lost_transmissions,
            retransmissions=self.net.retransmissions,
            survivors=survivors,
            reattach_count=(
                repair_stats.reattach_count if repair_stats is not None else 0
            ),
            cancelled_reinits=self.cancelled_reinits,
            repair_energy_mj=(
                repair_stats.repair_energy_j * 1e3
                if repair_stats is not None
                else 0.0
            ),
            transient_rate=transient_rate,
            rotations=self.rotations,
            degraded_rounds=self.degraded_rounds,
            healed_partitions=(
                repair_stats.healed_count if repair_stats is not None else 0
            ),
            parked_orphan_rounds=(
                repair_stats.parked_rounds if repair_stats is not None else 0
            ),
            reinit_energy_mj=self.reinit_energy_j * 1e3,
            failovers=self.failover.count,
            failover_energy_mj=self.failover.handover_energy_j * 1e3,
        )


def run_fault_experiment(
    algorithms: dict[str, AlgorithmFactory],
    loss_rates: tuple[float, ...] = (0.0, 0.05, 0.1),
    retry_budgets: tuple[int, ...] = (0, 2),
    churn_rate: float = 0.0,
    burst_length: float | None = None,
    transient_rate: float = 0.0,
    transient_downtime: float = 3.0,
    num_nodes: int = 100,
    num_rounds: int = 60,
    radio_range: float = 35.0,
    seed: int = 20140324,
    watchdog_patience: int = 2,
    repair: bool = True,
    adaptive_arq: bool = False,
    repair_metric: str = "etx",
    rotate_every: int = 0,
    heal_patience: int = 1,
    root_kill: int | None = None,
    root_grace: int = 1,
) -> FaultExperimentResult:
    """Sweep every algorithm over loss rates x retry budgets.

    The deployment and workload are seeded per loss rate only, so all
    algorithms *and all retry budgets* at one loss rate face the identical
    network and measurement series — the retry axis isolates the ARQ
    effect.  ``burst_length`` switches the loss process from i.i.d. to a
    Gilbert–Elliott chain matched to the same average rate.
    ``transient_rate`` adds per-round transient outages (geometric
    downtimes of mean ``transient_downtime``); ``adaptive_arq`` replaces
    the static retry sweep with one adaptive per-link policy per cell;
    ``repair=False`` disables orphan re-attach and membership patching,
    leaving the PR 2 watchdog-only baseline.  ``repair_metric`` picks how
    orphans rank candidate parents (``"etx"`` or ``"nearest"``);
    ``rotate_every`` turns on fault-aware tree rotation every that many
    rounds (0 = never), seeded per cell like the fault plan;
    ``heal_patience`` is how many consecutive rounds an unattachable orphan
    stays parked (re-probing, duty-cycled) before the re-init fallback
    fires (1 = the pre-healing same-round fallback).  ``root_kill``
    schedules the sink's death at that round on top of whatever random
    churn runs (RNG-safe: scheduled deaths draw nothing), exercising the
    fail-over path; ``root_grace`` is how many rounds a transiently-down
    root is waited out before a successor is elected.
    """
    points: list[FaultSeriesPoint] = []
    retry_axis: tuple[int | str, ...] = ("adp",) if adaptive_arq else retry_budgets
    for loss in loss_rates:
        loss_key = int(round(loss * 10_000))
        for retries in retry_axis:
            for name, factory in algorithms.items():
                deploy_rng = np.random.default_rng((seed, loss_key))
                graph = connected_random_graph(
                    num_nodes + 1, radio_range, deploy_rng
                )
                tree = build_routing_tree(graph, root=0)
                workload = SyntheticWorkload(graph.positions, deploy_rng)
                spec = QuerySpec(r_min=workload.r_min, r_max=workload.r_max)
                retry_key = 997 if retries == "adp" else retries
                fault_rng = np.random.default_rng(
                    (seed, loss_key, retry_key, 7)
                )
                churn = RandomChurn(churn_rate) if churn_rate > 0 else None
                if root_kill is not None:
                    churn = CompositeChurn(
                        churn, ScheduledChurn({root_kill: (tree.root,)})
                    )
                plan = FaultPlan(
                    loss=_loss_model(loss, burst_length),
                    churn=churn,
                    outages=(
                        RandomOutages(
                            transient_rate, mean_downtime=transient_downtime
                        )
                        if transient_rate > 0
                        else None
                    ),
                    rng=fault_rng,
                )
                arq: ArqPolicy = (
                    AdaptiveArqPolicy()
                    if retries == "adp"
                    else ArqPolicy(max_retries=int(retries))
                )
                driver = FaultDriver(
                    factory,
                    spec,
                    tree,
                    workload,
                    plan,
                    arq,
                    graph=graph,
                    repair=repair,
                    radio_range=radio_range,
                    watchdog_patience=watchdog_patience,
                    repair_metric=repair_metric,
                    rotate_every=rotate_every,
                    rotate_rng=np.random.default_rng(
                        (seed, loss_key, retry_key, 11)
                    ),
                    heal_patience=heal_patience,
                    root_grace=root_grace,
                    failover_rng=np.random.default_rng(
                        (seed, loss_key, retry_key, 13)
                    ),
                )
                driver.run(num_rounds)
                points.append(
                    driver.point(name, loss, churn_rate, transient_rate)
                )
    return FaultExperimentResult(points=points)


def _loss_model(loss: float, burst_length: float | None) -> LinkLossModel | None:
    if loss <= 0.0:
        return None
    if burst_length is None:
        return IndependentLoss(loss)
    return GilbertElliottLoss.from_average(loss, burst_length=burst_length)


# -- legacy loss-study API (extensions/loss.py) ------------------------------


@dataclass
class LossSeriesPoint:
    """Per-(algorithm, loss-rate) outcome of the original loss study."""

    algorithm: str
    loss_probability: float
    exact_fraction: float
    mean_rank_error: float
    mean_value_error: float
    failure_rate: float


@dataclass
class LossExperimentResult:
    """All series of the loss study, keyed by algorithm name."""

    points: list[LossSeriesPoint]

    def series(self, algorithm: str) -> list[LossSeriesPoint]:
        """The loss sweep of one algorithm, ordered by loss rate."""
        selected = [p for p in self.points if p.algorithm == algorithm]
        return sorted(selected, key=lambda p: p.loss_probability)


def run_loss_experiment(
    algorithms: dict[str, AlgorithmFactory],
    loss_probabilities: tuple[float, ...] = (0.0, 0.01, 0.05, 0.1, 0.2),
    num_nodes: int = 100,
    num_rounds: int = 60,
    radio_range: float = 35.0,
    seed: int = 20140324,
) -> LossExperimentResult:
    """The original Section-6 study: rank error under i.i.d. loss, no ARQ.

    Now a thin view over :func:`run_fault_experiment` — same fault path,
    same recovery layer — narrowed to the retry-less, churn-free setting
    and the original result shape.
    """
    result = run_fault_experiment(
        algorithms,
        loss_rates=tuple(loss_probabilities),
        retry_budgets=(0,),
        num_nodes=num_nodes,
        num_rounds=num_rounds,
        radio_range=radio_range,
        seed=seed,
    )
    return LossExperimentResult(
        points=[
            LossSeriesPoint(
                algorithm=p.algorithm,
                loss_probability=p.loss_rate,
                exact_fraction=p.exact_fraction,
                mean_rank_error=p.mean_rank_error,
                mean_value_error=p.mean_value_error,
                failure_rate=p.failure_rate,
            )
            for p in result.points
        ]
    )
