"""A TreeNetwork whose links lose frames, whose nodes die — and which
optionally fights back with per-hop ARQ.

:class:`FaultyTreeNetwork` plugs a :class:`~repro.faults.plan.FaultPlan`
into the engine's fault hooks, so **every** algorithm in the package (exact
and sketch) runs under injected faults without modification.  On top of the
raw faults sits the first recovery mechanism, :class:`ArqPolicy`: stop-and-
wait acknowledgements with a bounded retransmission budget, every attempt
honestly charged to the energy ledger:

* each data-frame attempt costs the child one send and the (live) parent
  one receive;
* a received frame is acknowledged with an
  :func:`~repro.radio.message.ack_cost` frame (parent pays the send, child
  the receive) — and the ACK itself can be lost, in which case the child
  retransmits a frame the parent already has (the parent de-duplicates by
  sequence number, but the energy is spent either way);
* a child whose frame was lost still listens through the ACK window in
  vain, paying the receive cost of an ACK-sized frame.

Broadcasts stay loss-free (flooding redundancy masks individual drops) but
are pruned by churn: a dead internal vertex cannot retransmit, so its whole
subtree misses the flood — see ``TreeNetwork.broadcast``.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from itertools import compress
from dataclasses import dataclass
from typing import Mapping, Optional, TypeVar

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, IndependentLoss
from repro.network.linkstats import LinkQualityEstimator
from repro.network.tree import RoutingTree
from repro.radio.ledger import EnergyLedger
from repro.radio.message import ack_cost, message_bits
from repro.sim.engine import (
    CollectionRecord,
    Payload,
    TreeNetwork,
    UniformPayload,
)
from repro.sim.vectorized import expand_arq_charges

P = TypeVar("P", bound=Payload)


@dataclass(frozen=True)
class ArqPolicy:
    """Per-hop stop-and-wait ARQ with a bounded retry budget.

    ``max_retries == 0`` disables the protocol entirely (no ACK traffic,
    single best-effort attempt) so that retry sweeps compare against a true
    zero-overhead baseline.
    """

    max_retries: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    @property
    def enabled(self) -> bool:
        """Whether ACKs and retransmissions happen at all."""
        return self.max_retries > 0

    @property
    def max_attempts(self) -> int:
        """Data-frame transmissions allowed per hop."""
        return self.max_retries + 1

    #: Label used in result tables for the retry axis.
    @property
    def label(self) -> int | str:
        return self.max_retries

    def attempts_for(self, sender: int, receiver: int) -> int:
        """Data-frame attempts budgeted for this directed link."""
        return self.max_attempts

    def observe(self, sender: int, receiver: int, delivered: bool) -> None:
        """Feedback after one attempt (ACK-confirmed or not).

        The static policy ignores it; adaptive controllers learn from it.
        """

    def observe_batch(self, senders, receivers, delivered) -> None:
        """Batched feedback: equal-length outcome vectors, in attempt order.

        Must match a sample-by-sample :meth:`observe` replay exactly; the
        static policy ignores the batch like it ignores the scalars.
        """


class AdaptiveArqPolicy(ArqPolicy):
    """Per-link ARQ whose retry budget follows an EWMA of observed loss.

    Each directed link keeps an exponentially weighted estimate ``p`` of its
    attempt-failure probability, learned from ACK-confirmed outcomes.  The
    retry budget for the link is the smallest number of attempts that
    reaches ``target_delivery`` under i.i.d. loss ``p``::

        attempts = ceil(log(1 - target_delivery) / log(p))

    clamped to ``[1, max_retries + 1]``.  Quiet links near-instantly decay
    to single attempts (no wasted retransmission slots), while a link inside
    a Gilbert-Elliott burst ramps its budget up within a few rounds — the
    per-link replacement for the global ``retries`` knob.

    The learned state lives in a :class:`~repro.network.linkstats.
    LinkQualityEstimator` (pass ``estimator`` to share one with other
    consumers; :class:`FaultyTreeNetwork` adopts the policy's estimator as
    its :attr:`~FaultyTreeNetwork.link_stats` so ARQ, tree repair and
    rotation all read the same per-link picture).

    Note: instances carry mutable learning state — use one per experiment
    cell, not a shared constant.  Consequently equality is *identity*: two
    policies with the same configuration but different learned state are
    different policies, and the inherited frozen-dataclass ``__eq__``
    (which compared ``max_retries`` only) would lie about that.
    """

    def __init__(
        self,
        max_retries: int = 5,
        target_delivery: float = 0.99,
        smoothing: float = 0.25,
        prior_loss: float = 0.05,
        estimator: LinkQualityEstimator | None = None,
    ) -> None:
        if max_retries < 1:
            raise ConfigurationError(
                f"adaptive ARQ needs max_retries >= 1, got {max_retries}"
            )
        if not 0.0 < target_delivery < 1.0:
            raise ConfigurationError(
                f"target_delivery must be in (0, 1), got {target_delivery}"
            )
        if estimator is None:
            estimator = LinkQualityEstimator(
                smoothing=smoothing, prior_loss=prior_loss
            )
        object.__setattr__(self, "max_retries", max_retries)
        object.__setattr__(self, "target_delivery", target_delivery)
        object.__setattr__(self, "estimator", estimator)

    @property
    def smoothing(self) -> float:
        """EWMA weight of the newest loss sample (the estimator's)."""
        return self.estimator.smoothing

    @property
    def prior_loss(self) -> float:
        """Loss assumed for never-observed links (the estimator's)."""
        return self.estimator.prior_loss

    @property
    def enabled(self) -> bool:
        """Adaptive ARQ always runs the ACK protocol (it needs the feedback)."""
        return True

    @property
    def label(self) -> int | str:
        return "adp"

    def link_loss(self, sender: int, receiver: int) -> float:
        """Current loss estimate for the directed link."""
        return self.estimator.loss(sender, receiver)

    def attempts_for(self, sender: int, receiver: int) -> int:
        loss = min(max(self.link_loss(sender, receiver), 0.0), 0.999)
        if loss <= 0.0:
            attempts = 1
        else:
            attempts = math.ceil(
                math.log(1.0 - self.target_delivery) / math.log(loss)
            )
        return max(1, min(attempts, self.max_attempts))

    def observe(self, sender: int, receiver: int, delivered: bool) -> None:
        self.estimator.observe(sender, receiver, delivered)

    def observe_batch(self, senders, receivers, delivered) -> None:
        # Delegates to the estimator's ordered EWMA replay, so batched
        # feedback yields bit-identical budgets to scalar feedback.
        self.estimator.observe_batch(senders, receivers, delivered)

    # The frozen-dataclass __eq__/__repr__ inherited from ArqPolicy compare
    # and print ``max_retries`` alone, silently equating policies whose
    # learned per-link state (and even target_delivery/smoothing) differ.
    def __eq__(self, other: object) -> bool:
        return self is other

    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(max_retries={self.max_retries}, "
            f"target_delivery={self.target_delivery}, "
            f"smoothing={self.smoothing}, prior_loss={self.prior_loss}, "
            f"links_observed={self.estimator.num_links})"
        )


class FaultyTreeNetwork(TreeNetwork):
    """Tree network with pluggable fault injection and per-hop ARQ."""

    def __init__(
        self,
        tree: RoutingTree,
        ledger: EnergyLedger,
        plan: FaultPlan | None = None,
        arq: ArqPolicy | None = None,
        virtual_vertices: frozenset[int] | set[int] = frozenset(),
        link_stats: LinkQualityEstimator | None = None,
        core: str | None = None,
    ) -> None:
        super().__init__(tree, ledger, virtual_vertices, core=core)
        self.plan = plan if plan is not None else FaultPlan()
        self.arq = arq if arq is not None else ArqPolicy()
        if link_stats is None:
            # One shared per-link picture: an adaptive ARQ policy already
            # learns into an estimator, so repair and rotation read that
            # same one instead of keeping a private copy.
            link_stats = getattr(self.arq, "estimator", None)
        #: Per-directed-link loss/ETX estimates, fed by every ARQ exchange.
        self.link_stats = (
            link_stats if link_stats is not None else LinkQualityEstimator()
        )
        # When the policy learns into the shared estimator itself (its
        # ACK-confirmed viewpoint already covers the uplink), the network
        # must not fold the raw data-frame outcome in a second time.
        self._feeds_uplink_stats = (
            getattr(self.arq, "estimator", None) is not self.link_stats
        )
        self._track_sources = True
        # The batched faulty convergecast replays this class's exact ARQ
        # decision sequence, so it is only sound while this class's hooks
        # are authoritative: a subclass overriding either hook falls back
        # to the per-hop object walk (whose charges still flush as one
        # batch on the vector core).
        cls = type(self)
        self._vector_faulty_convergecast = self.core == "vector" and (
            cls._hop_delivered is FaultyTreeNetwork._hop_delivered
            and cls._vertex_down is FaultyTreeNetwork._vertex_down
        )
        #: Data frames that failed to reach their (live) parent, attempts
        #: counted individually.
        self.lost_transmissions = 0
        #: Extra data-frame attempts beyond the first, summed over hops.
        self.retransmissions = 0
        #: Acknowledgement frames put on the air by receiving parents.
        self.acks_sent = 0
        #: ACK frames that were lost (triggering a redundant retransmission).
        self.lost_acks = 0

    # -- round lifecycle ------------------------------------------------------

    def begin_faults_round(self, round_index: int) -> frozenset[int]:
        """Advance the fault plan by one round; returns newly dead vertices."""
        return self.plan.begin_round(self.tree, round_index)

    def live_sensor_nodes(self) -> tuple[int, ...]:
        """Sensor nodes that are up this round (not dead, not in an outage)."""
        return tuple(
            v for v in self.tree.sensor_nodes if not self.plan.is_down(v)
        )

    # -- engine fault hooks ---------------------------------------------------

    def _vertex_down(self, vertex: int) -> bool:
        return self.plan.is_down(vertex)

    def _down_mask(self) -> np.ndarray | None:
        plan = self.plan
        if not plan.dead and not plan.down:
            return None
        mask = np.zeros(self.tree.num_vertices, dtype=bool)
        if plan.dead:
            mask[list(plan.dead)] = True
        if plan.down:
            mask[list(plan.down)] = True
        return mask

    def _hop_delivered(
        self, vertex: int, parent: int, payload: Payload
    ) -> tuple[bool, int]:
        cost = message_bits(payload.payload_bits())
        distance = self.tree.link_distance[vertex]
        parent_down = self._vertex_down(parent)
        ack = ack_cost()
        arq = self.arq
        delivered = False
        bits = 0
        for attempt in range(max(1, arq.attempts_for(vertex, parent))):
            if attempt > 0:
                self.retransmissions += 1
            self._charges.charge_send(
                vertex, cost, values=payload.num_values(), link_distance=distance
            )
            bits += cost.total_bits
            if parent_down:
                frame_ok = False
            else:
                # The parent listens on its TDMA schedule whether or not the
                # frame survives the channel.
                self._charges.charge_recv(parent, cost)
                frame_ok = not self.plan.transmission_lost(vertex, parent)
                if self._feeds_uplink_stats:
                    # Channel truth for the uplink (a down parent is not a
                    # channel sample and must not poison the loss estimate).
                    self.link_stats.observe(vertex, parent, frame_ok)
            if frame_ok:
                delivered = True
            else:
                self.lost_transmissions += 1
            if not arq.enabled:
                break
            if frame_ok:
                # Parent acknowledges; the ACK rides the same lossy channel.
                self._charges.charge_send(parent, ack, link_distance=distance)
                self._charges.charge_recv(vertex, ack)
                self.acks_sent += 1
                bits += ack.total_bits
                ack_ok = not self.plan.transmission_lost(parent, vertex)
                # The ACK samples the downlink — the other half of ETX.
                self.link_stats.observe(parent, vertex, ack_ok)
                if ack_ok:
                    arq.observe(vertex, parent, True)
                    break
                self.lost_acks += 1
            else:
                # The child listens through the ACK window in vain.
                self._charges.charge_recv(vertex, ack)
            # From the sender's viewpoint only an ACK confirms the attempt.
            arq.observe(vertex, parent, False)
        return delivered, bits

    # -- vectorized faulty convergecast ---------------------------------------

    def convergecast(self, contributions: Mapping[int, P]) -> Optional[P]:
        if not self._vector_faulty_convergecast:
            return super().convergecast(contributions)
        arq = self.arq
        arq_cls = type(arq)
        static_arq = (
            arq_cls.attempts_for is ArqPolicy.attempts_for
            and arq_cls.observe is ArqPolicy.observe
        )
        # The uniform path reads plan.dead/plan.down as a mask, so a plan
        # subclass redefining is_down must keep the object-intake walk.
        if (
            static_arq
            and contributions
            and type(self.plan).is_down is FaultPlan.is_down
        ):
            first = next(iter(contributions.values()))
            cls_p = type(first)
            if (
                isinstance(first, UniformPayload)
                and cls_p.uniform_leaf_values is not None
                and cls_p.is_empty is Payload.is_empty
            ):
                payloads = list(contributions.values())
                if set(map(type, payloads)) == {cls_p}:
                    contributor_idx = np.fromiter(
                        contributions.keys(),
                        dtype=np.int64,
                        count=len(payloads),
                    )
                    return self._convergecast_faulty_uniform(
                        cls_p, contributor_idx, payloads
                    )
        return self._convergecast_faulty_vector(contributions)

    def _convergecast_faulty_uniform(
        self,
        cls_p: type,
        contributor_idx: np.ndarray,
        payloads: list,
    ) -> Optional[Payload]:
        """Faulty convergecast under the ``UniformPayload`` contract.

        Bit-identical to the object walk, like
        :meth:`_convergecast_faulty_vector`, but payload state never
        travels as objects: only the loss/ARQ *decisions* stay in a
        boolean Python loop (they consume one ordered RNG stream), and
        everything derived from them is folded as arrays afterwards —

        * subtree value counts and the delivered-contributor set are
          per-vertex folds over the delivered edges, one topological
          level at a time (int sums commute, so level order equals hop
          order);
        * the root answer comes from ``vector_reduce`` over the payloads
          whose whole path delivered (the contract makes that equal to
          the object walk's tree-order ``merged_with`` fold);
        * i.i.d. loss draws compare pre-drawn uniform blocks inline, with
          the same rewind-and-replay exit as
          :class:`~repro.faults.plan.UniformBlockStream`, so the
          generator state matches scalar sampling exactly (other loss
          models keep the :meth:`~repro.faults.plan.FaultPlan.batched_sampling`
          shim);
        * deferred link-quality samples replay through a position-wise
          EWMA fold (:meth:`_replay_uniform_link_stats`) — valid because
          each directed link is sampled by exactly one hop per
          convergecast, so per-link chains are independent;
        * charges expand per attempt through
          :func:`~repro.sim.vectorized.expand_arq_charges` into one
          ordered ``charge_batch``.

        Only reached for static ARQ policies (the caller checks), so no
        estimator feedback is read mid-walk.
        """
        tree = self.tree
        self.exchanges += 1
        plan = self.plan
        arrays = self._arrays
        assert arrays is not None
        n = tree.num_vertices
        expected = len(payloads)
        down_arr = self._down_mask()
        if down_arr is None:
            live_idx = contributor_idx
            down_list = [False] * n
        else:
            live_idx = contributor_idx[~down_arr[contributor_idx]]
            down_list = down_arr.tolist()
        has_payload = np.zeros(n, dtype=bool)
        has_payload[live_idx] = True
        hp = has_payload.tolist()
        parent = tree.parent
        virtual = self.virtual_vertices
        arq = self.arq
        enabled = arq.enabled
        budget = max(1, arq.max_attempts)
        loss = plan.loss
        inline_iid = (
            type(plan).transmission_lost is FaultPlan.transmission_lost
            and type(loss) is IndependentLoss
        )
        p = loss.probability if inline_iid else 0.0
        draws = inline_iid and p > 0.0
        shim_mode = loss is not None and not inline_iid
        transmission_lost = plan.transmission_lost

        tx: list[int] = []
        natt: list[int] = []
        fo_flat: list[bool] = []
        pd_hops: list[int] = []
        final_ack: list[bool] = []
        edge_del = [False] * n
        tx_append = tx.append
        natt_append = natt.append
        fo_append = fo_flat.append
        fa_append = final_ack.append
        lost_acks = 0
        hop_i = 0

        # Local uniform-block state for the inline i.i.d. fast path: blocks
        # are drawn straight off the plan's generator and the ``finally``
        # clause rewinds-and-replays exactly like UniformBlockStream.close,
        # so the generator ends bit-identical to scalar consumption.
        rng = plan.rng
        rng_random = rng.random
        block = max(128, 2 * expected)
        buf: list[float] = []
        bi = 0
        blen = 0
        nblocks = 0
        state0 = rng.bit_generator.state if draws else None
        session = (
            plan.batched_sampling(block=block) if shim_mode else nullcontext()
        )
        has_virtual = bool(virtual)
        try:
            with session:
                for vertex in self._order_no_root:
                    if not hp[vertex]:
                        continue
                    if down_list[vertex]:
                        continue
                    par = parent[vertex]
                    if has_virtual and vertex in virtual:
                        edge_del[vertex] = True  # device-internal link
                        hp[par] = True
                        continue
                    k = 0
                    delivered = False
                    afin = False
                    if down_list[par]:
                        # Dead air: every attempt fails without a draw.
                        k = budget if enabled else 1
                        for _ in range(k):
                            fo_append(False)
                        pd_hops.append(hop_i)
                    elif draws:
                        while True:
                            k += 1
                            if bi == blen:
                                buf = rng_random(block).tolist()
                                bi = 0
                                blen = block
                                nblocks += 1
                            fo = buf[bi] >= p
                            bi += 1
                            fo_append(fo)
                            if fo:
                                delivered = True
                                if not enabled:
                                    break
                                if bi == blen:
                                    buf = rng_random(block).tolist()
                                    bi = 0
                                    nblocks += 1
                                afin = buf[bi] >= p
                                bi += 1
                                if afin:
                                    break
                                lost_acks += 1
                            elif not enabled:
                                break
                            if k == budget:
                                break
                    elif shim_mode:
                        while True:
                            k += 1
                            fo = not transmission_lost(vertex, par)
                            fo_append(fo)
                            if fo:
                                delivered = True
                                if not enabled:
                                    break
                                afin = not transmission_lost(par, vertex)
                                if afin:
                                    break
                                lost_acks += 1
                            elif not enabled:
                                break
                            if k == budget:
                                break
                    else:
                        # Loss disabled or zero-probability: no randomness
                        # is consumed and the first frame always delivers.
                        k = 1
                        fo_append(True)
                        delivered = True
                        afin = True
                    tx_append(vertex)
                    natt_append(k)
                    fa_append(afin)
                    hop_i += 1
                    if delivered:
                        edge_del[vertex] = True
                        hp[par] = True
        finally:
            if nblocks:
                consumed = (nblocks - 1) * block + bi
                rng.bit_generator.state = state0
                if consumed:
                    rng_random(consumed)

        n_hops = hop_i
        parent_np = arrays.parent
        edge_del_arr = np.array(edge_del, dtype=bool)
        values = np.zeros(n, dtype=np.int64)
        values[live_idx] = cls_p.uniform_leaf_values
        for level in reversed(arrays.levels[1:]):  # deepest level first
            m = edge_del_arr[level]
            if m.any():
                lv = level[m]
                np.add.at(values, parent_np[lv], values[lv])
        path_ok = np.zeros(n, dtype=bool)
        path_ok[tree.root] = True
        for level in arrays.levels[1:]:
            path_ok[level] = path_ok[parent_np[level]] & edge_del_arr[level]
        delivered_mask = path_ok[contributor_idx]

        phase_total = 0
        if n_hops:
            tx_arr = np.array(tx, dtype=np.int64)
            natt_arr = np.array(natt, dtype=np.int64)
            fo_arr = np.array(fo_flat, dtype=bool)
            par_arr = parent_np[tx_arr]
            parent_up_arr = np.ones(n_hops, dtype=bool)
            if pd_hops:
                parent_up_arr[pd_hops] = False
            offsets = np.zeros(n_hops, dtype=np.int64)
            np.cumsum(natt_arr[:-1], out=offsets[1:])
            nfo = (
                np.add.reduceat(fo_arr.astype(np.int64), offsets)
                if enabled
                else None
            )
            self._replay_uniform_link_stats(
                tx,
                par_arr,
                parent_up_arr,
                natt_arr,
                fo_arr,
                offsets,
                nfo,
                final_ack,
                enabled,
            )
            hop_index = np.repeat(np.arange(n_hops), natt_arr)
            att_child = tx_arr[hop_index]
            att_parent = par_arr[hop_index]
            cost = message_bits(cls_p.uniform_bits)
            ack = ack_cost()
            total_attempts = int(hop_index.shape[0])
            att_bits = np.full(total_attempts, cost.total_bits, dtype=np.int64)
            att_frames = np.full(total_attempts, cost.messages, dtype=np.int64)
            send_cpb = (
                self._send_cpb_array[att_child]
                if self._send_cpb_array is not None
                else self._send_cpb
            )
            self.ledger.charge_batch(
                **expand_arq_charges(
                    att_child,
                    att_parent,
                    att_bits,
                    att_frames,
                    values[att_child],
                    parent_up_arr[hop_index],
                    fo_arr,
                    enabled,
                    send_cpb,
                    self.ledger.model.recv_cost,
                    ack.total_bits,
                )
            )
            ok_attempts = int(fo_arr.sum())
            self.lost_transmissions += total_attempts - ok_attempts
            self.retransmissions += total_attempts - n_hops
            self.lost_acks += lost_acks
            phase_total = cost.total_bits * total_attempts
            if enabled:
                self.acks_sent += ok_attempts
                phase_total += ack.total_bits * ok_attempts

        self.phase_bits[self.phase] = (
            self.phase_bits.get(self.phase, 0) + phase_total
        )
        delivered_sources = frozenset(
            contributor_idx[delivered_mask].tolist()
        )
        self.collection_log.append(
            CollectionRecord(expected=expected, delivered=delivered_sources)
        )
        if not delivered_mask.any():
            return None
        kept = [
            payload
            for payload, ok in zip(payloads, delivered_mask.tolist())
            if ok
        ]
        return cls_p.vector_reduce(kept)

    def _replay_uniform_link_stats(
        self,
        tx: list[int],
        par_arr: np.ndarray,
        parent_up_arr: np.ndarray,
        natt_arr: np.ndarray,
        fo_arr: np.ndarray,
        offsets: np.ndarray,
        nfo: np.ndarray | None,
        final_ack: list[bool],
        enabled: bool,
    ) -> None:
        """Replay one convergecast's deferred channel samples, bit-exactly.

        Each directed link is sampled by exactly one hop per convergecast
        (a vertex transmits at most once, so the ``(child, parent)`` and
        ``(parent, child)`` keys across hops are all distinct) and every
        sample of a link is consecutive within its hop.  Per-link EWMA
        chains are therefore independent, and folding them position-wise —
        one elementwise ``(1-s)*prev + s*sample`` array step per attempt
        index — performs the exact scalar float sequence per link.  The
        uplink chain of a hop is its per-attempt frame outcome; the
        downlink chain is one lost ACK per surviving frame except the
        last, whose outcome the walk recorded.  New links are inserted in
        hop order, uplink before downlink, matching scalar insertion
        order.
        """
        est = self.link_stats
        d = est._loss
        prior = est.prior_loss
        s = est.smoothing
        keep = 1.0 - s
        dget = d.get
        feeds_up = self._feeds_uplink_stats
        all_up = bool(parent_up_arr.all())
        par_list = par_arr.tolist()
        dn_flags = (nfo > 0).tolist() if enabled else None
        # Key tuples come straight off zip (the pair IS the key); prior
        # lookups run as map(dict.get, ...) at C speed, with a missing
        # link surfacing as None.  Missing links only appear while the
        # topology is still being explored, so the slow interleaved
        # insertion loop runs a handful of times per experiment.
        if feeds_up:
            pairs_up = zip(tx, par_list)
            up_keys = (
                list(pairs_up)
                if all_up
                else list(compress(pairs_up, parent_up_arr.tolist()))
            )
            prev_up = list(map(dget, up_keys))
        else:
            up_keys = []
            prev_up = []
        if dn_flags is not None:
            dn_keys = list(compress(zip(par_list, tx), dn_flags))
            prev_dn = list(map(dget, dn_keys))
        else:
            dn_keys = []
            prev_dn = []
        new_links = (None in prev_up) or (None in prev_dn)
        if new_links:
            prev_up = [prior if p is None else p for p in prev_up]
            prev_dn = [prior if p is None else p for p in prev_dn]
        samples = 0
        up_vals: list[float] = []
        dn_vals: list[float] = []
        if up_keys:
            up_hops = (
                np.arange(len(tx))
                if all_up
                else np.flatnonzero(parent_up_arr)
            )
            cur = np.array(prev_up, dtype=np.float64)
            lens = natt_arr[up_hops]
            starts = offsets[up_hops]
            fail = (~fo_arr).astype(np.float64)
            for j in range(int(lens.max())):
                m = lens > j
                cur[m] = keep * cur[m] + s * fail[starts[m] + j]
            up_vals = cur.tolist()
            samples += int(lens.sum())
        if dn_keys:
            assert nfo is not None
            dn_hops = np.flatnonzero(nfo > 0)
            curd = np.array(prev_dn, dtype=np.float64)
            k_arr = nfo[dn_hops]
            final_fail = (
                ~np.array(final_ack, dtype=bool)[dn_hops]
            ).astype(np.float64)
            for j in range(int(k_arr.max())):
                m = k_arr > j
                sample = np.where(k_arr[m] == j + 1, final_fail[m], 1.0)
                curd[m] = keep * curd[m] + s * sample
            dn_vals = curd.tolist()
            samples += int(k_arr.sum())
        if not new_links:
            # Every key already exists, so assignment order cannot change
            # the dict's (observable) insertion order: bulk-update.
            d.update(zip(up_keys, up_vals))
            d.update(zip(dn_keys, dn_vals))
        else:
            # First sighting of at least one link: insert in the scalar
            # walk's order — hop by hop, uplink before downlink.
            n_hops = len(tx)
            up_iter = iter(zip(up_keys, up_vals))
            dn_iter = iter(zip(dn_keys, dn_vals))
            if not feeds_up:
                up_flags = [False] * n_hops
            elif all_up:
                up_flags = [True] * n_hops
            else:
                up_flags = parent_up_arr.tolist()
            if dn_flags is None:
                dn_flags = [False] * n_hops
            for up_here, dn_here in zip(up_flags, dn_flags):
                if up_here:
                    key, val = next(up_iter)
                    d[key] = val
                if dn_here:
                    key, val = next(dn_iter)
                    d[key] = val
        est.observations += samples

    def _convergecast_faulty_vector(
        self, contributions: Mapping[int, P]
    ) -> Optional[P]:
        """Batched loss/ARQ convergecast, bit-identical to the object walk.

        The per-hop *decisions* (loss draws, retry cut-offs, payload
        merges) still run in a lean Python loop — they are sequential by
        nature: every draw consumes the plan's single RNG stream and every
        merge feeds the next hop.  Everything else is batched:

        * uniforms come block-wise from :meth:`FaultPlan.batched_sampling`,
          which leaves the generator in the exact state scalar sampling
          would (so the two cores' RNG streams never diverge);
        * under a static ARQ policy the link-quality observations are
          deferred and replayed once via ``observe_batch`` (same per-link
          EWMA order — nothing reads the estimator mid-convergecast);
        * all radio charges expand per attempt through
          :func:`~repro.sim.vectorized.expand_arq_charges` into a single
          ordered :meth:`~repro.radio.ledger.EnergyLedger.charge_batch`.

        An adaptive policy (overridden ``attempts_for``/``observe``) reads
        its estimator between hops, so its feedback stays inline; only the
        charge accounting is batched in that case.
        """
        tree = self.tree
        self.exchanges += 1
        plan = self.plan
        is_down = plan.is_down
        accumulated: list[Optional[P]] = [None] * tree.num_vertices
        expected = 0
        sources: dict[int, set[int]] = {}
        for vertex, payload in contributions.items():
            if payload.is_empty():
                continue
            expected += 1
            if is_down(vertex):
                continue
            accumulated[vertex] = payload
            sources[vertex] = {vertex}

        arq = self.arq
        arq_cls = type(arq)
        fixed_budget = arq_cls.attempts_for is ArqPolicy.attempts_for
        arq_observes = arq_cls.observe is not ArqPolicy.observe
        defer_stats = fixed_budget and not arq_observes
        enabled = arq.enabled
        budget_const = max(1, arq.max_attempts) if fixed_budget else 0
        feeds_up = self._feeds_uplink_stats
        observe = self.link_stats.observe
        transmission_lost = plan.transmission_lost
        virtual = self.virtual_vertices
        parent = tree.parent
        ack = ack_cost()

        # (frames, total_bits) per distinct payload size — message_bits is
        # pure, and a convergecast usually carries very few distinct sizes.
        cost_cache: dict[int, tuple[int, int]] = {}
        hop_child: list[int] = []
        hop_parent: list[int] = []
        hop_bits: list[int] = []
        hop_frames: list[int] = []
        hop_values: list[int] = []
        hop_attempts: list[int] = []
        hop_parent_up: list[bool] = []
        frame_oks: list[bool] = []
        stat_senders: list[int] = []
        stat_receivers: list[int] = []
        stat_delivered: list[bool] = []
        fo_append = frame_oks.append
        lost_acks = 0

        session = (
            plan.batched_sampling(block=max(128, 2 * expected))
            if plan.loss is not None
            else nullcontext()
        )
        with session:
            for vertex in self._order_no_root:
                merged = accumulated[vertex]
                if merged is None:
                    continue
                if is_down(vertex):
                    continue  # forwarded state dies with the forwarding node
                par = parent[vertex]
                if vertex in virtual:
                    delivered = True  # device-internal link, no radio
                else:
                    size = merged.payload_bits()
                    entry = cost_cache.get(size)
                    if entry is None:
                        cost = message_bits(size)
                        entry = (cost.messages, cost.total_bits)
                        cost_cache[size] = entry
                    parent_up = not is_down(par)
                    budget = (
                        budget_const
                        if fixed_budget
                        else max(1, arq.attempts_for(vertex, par))
                    )
                    delivered = False
                    attempts = 0
                    for _ in range(budget):
                        attempts += 1
                        if parent_up:
                            frame_ok = not transmission_lost(vertex, par)
                            if feeds_up:
                                if defer_stats:
                                    stat_senders.append(vertex)
                                    stat_receivers.append(par)
                                    stat_delivered.append(frame_ok)
                                else:
                                    observe(vertex, par, frame_ok)
                        else:
                            frame_ok = False
                        fo_append(frame_ok)
                        if frame_ok:
                            delivered = True
                        if not enabled:
                            break
                        if frame_ok:
                            ack_ok = not transmission_lost(par, vertex)
                            if defer_stats:
                                stat_senders.append(par)
                                stat_receivers.append(vertex)
                                stat_delivered.append(ack_ok)
                            else:
                                observe(par, vertex, ack_ok)
                            if ack_ok:
                                if arq_observes:
                                    arq.observe(vertex, par, True)
                                break
                            lost_acks += 1
                        if arq_observes:
                            arq.observe(vertex, par, False)
                    hop_child.append(vertex)
                    hop_parent.append(par)
                    hop_frames.append(entry[0])
                    hop_bits.append(entry[1])
                    hop_values.append(merged.num_values())
                    hop_attempts.append(attempts)
                    hop_parent_up.append(parent_up)
                if not delivered:
                    continue
                existing = accumulated[par]
                accumulated[par] = (
                    merged if existing is None else existing.merged_with(merged)
                )
                sources.setdefault(par, set()).update(sources.get(vertex, ()))

        if stat_senders:
            self.link_stats.observe_batch(
                stat_senders, stat_receivers, stat_delivered
            )

        phase_total = 0
        n_hops = len(hop_child)
        if n_hops:
            attempt_counts = np.array(hop_attempts, dtype=np.int64)
            hop_index = np.repeat(np.arange(n_hops), attempt_counts)
            att_child = np.array(hop_child, dtype=np.int64)[hop_index]
            att_parent = np.array(hop_parent, dtype=np.int64)[hop_index]
            att_bits = np.array(hop_bits, dtype=np.int64)[hop_index]
            att_frames = np.array(hop_frames, dtype=np.int64)[hop_index]
            att_values = np.array(hop_values, dtype=np.int64)[hop_index]
            att_parent_up = np.array(hop_parent_up, dtype=bool)[hop_index]
            att_frame_ok = np.array(frame_oks, dtype=bool)
            send_cpb = (
                self._send_cpb_array[att_child]
                if self._send_cpb_array is not None
                else self._send_cpb
            )
            self.ledger.charge_batch(
                **expand_arq_charges(
                    att_child,
                    att_parent,
                    att_bits,
                    att_frames,
                    att_values,
                    att_parent_up,
                    att_frame_ok,
                    enabled,
                    send_cpb,
                    self.ledger.model.recv_cost,
                    ack.total_bits,
                )
            )
            total_attempts = int(att_frame_ok.shape[0])
            ok_attempts = int(att_frame_ok.sum())
            self.lost_transmissions += total_attempts - ok_attempts
            self.retransmissions += total_attempts - n_hops
            self.lost_acks += lost_acks
            phase_total = int(att_bits.sum())
            if enabled:
                self.acks_sent += ok_attempts
                phase_total += ack.total_bits * ok_attempts

        self.phase_bits[self.phase] = (
            self.phase_bits.get(self.phase, 0) + phase_total
        )
        delivered_sources = frozenset(sources.get(tree.root, set()))
        self.collection_log.append(
            CollectionRecord(expected=expected, delivered=delivered_sources)
        )
        return accumulated[tree.root]


class LossyTreeNetwork(FaultyTreeNetwork):
    """Back-compat facade: i.i.d. convergecast loss, no churn, no ARQ.

    This is the exact network ``extensions/loss.py`` shipped before the
    fault subsystem existed; it remains importable from there.
    """

    def __init__(
        self,
        tree: RoutingTree,
        ledger: EnergyLedger,
        loss_probability: float,
        rng: np.random.Generator,
    ) -> None:
        plan = FaultPlan(loss=IndependentLoss(loss_probability), rng=rng)
        super().__init__(tree, ledger, plan=plan)
        self.loss_probability = loss_probability
