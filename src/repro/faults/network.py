"""A TreeNetwork whose links lose frames, whose nodes die — and which
optionally fights back with per-hop ARQ.

:class:`FaultyTreeNetwork` plugs a :class:`~repro.faults.plan.FaultPlan`
into the engine's fault hooks, so **every** algorithm in the package (exact
and sketch) runs under injected faults without modification.  On top of the
raw faults sits the first recovery mechanism, :class:`ArqPolicy`: stop-and-
wait acknowledgements with a bounded retransmission budget, every attempt
honestly charged to the energy ledger:

* each data-frame attempt costs the child one send and the (live) parent
  one receive;
* a received frame is acknowledged with an
  :func:`~repro.radio.message.ack_cost` frame (parent pays the send, child
  the receive) — and the ACK itself can be lost, in which case the child
  retransmits a frame the parent already has (the parent de-duplicates by
  sequence number, but the energy is spent either way);
* a child whose frame was lost still listens through the ACK window in
  vain, paying the receive cost of an ACK-sized frame.

Broadcasts stay loss-free (flooding redundancy masks individual drops) but
are pruned by churn: a dead internal vertex cannot retransmit, so its whole
subtree misses the flood — see ``TreeNetwork.broadcast``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, IndependentLoss
from repro.network.linkstats import LinkQualityEstimator
from repro.network.tree import RoutingTree
from repro.radio.ledger import EnergyLedger
from repro.radio.message import ack_cost, message_bits
from repro.sim.engine import Payload, TreeNetwork


@dataclass(frozen=True)
class ArqPolicy:
    """Per-hop stop-and-wait ARQ with a bounded retry budget.

    ``max_retries == 0`` disables the protocol entirely (no ACK traffic,
    single best-effort attempt) so that retry sweeps compare against a true
    zero-overhead baseline.
    """

    max_retries: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    @property
    def enabled(self) -> bool:
        """Whether ACKs and retransmissions happen at all."""
        return self.max_retries > 0

    @property
    def max_attempts(self) -> int:
        """Data-frame transmissions allowed per hop."""
        return self.max_retries + 1

    #: Label used in result tables for the retry axis.
    @property
    def label(self) -> int | str:
        return self.max_retries

    def attempts_for(self, sender: int, receiver: int) -> int:
        """Data-frame attempts budgeted for this directed link."""
        return self.max_attempts

    def observe(self, sender: int, receiver: int, delivered: bool) -> None:
        """Feedback after one attempt (ACK-confirmed or not).

        The static policy ignores it; adaptive controllers learn from it.
        """


class AdaptiveArqPolicy(ArqPolicy):
    """Per-link ARQ whose retry budget follows an EWMA of observed loss.

    Each directed link keeps an exponentially weighted estimate ``p`` of its
    attempt-failure probability, learned from ACK-confirmed outcomes.  The
    retry budget for the link is the smallest number of attempts that
    reaches ``target_delivery`` under i.i.d. loss ``p``::

        attempts = ceil(log(1 - target_delivery) / log(p))

    clamped to ``[1, max_retries + 1]``.  Quiet links near-instantly decay
    to single attempts (no wasted retransmission slots), while a link inside
    a Gilbert-Elliott burst ramps its budget up within a few rounds — the
    per-link replacement for the global ``retries`` knob.

    The learned state lives in a :class:`~repro.network.linkstats.
    LinkQualityEstimator` (pass ``estimator`` to share one with other
    consumers; :class:`FaultyTreeNetwork` adopts the policy's estimator as
    its :attr:`~FaultyTreeNetwork.link_stats` so ARQ, tree repair and
    rotation all read the same per-link picture).

    Note: instances carry mutable learning state — use one per experiment
    cell, not a shared constant.  Consequently equality is *identity*: two
    policies with the same configuration but different learned state are
    different policies, and the inherited frozen-dataclass ``__eq__``
    (which compared ``max_retries`` only) would lie about that.
    """

    def __init__(
        self,
        max_retries: int = 5,
        target_delivery: float = 0.99,
        smoothing: float = 0.25,
        prior_loss: float = 0.05,
        estimator: LinkQualityEstimator | None = None,
    ) -> None:
        if max_retries < 1:
            raise ConfigurationError(
                f"adaptive ARQ needs max_retries >= 1, got {max_retries}"
            )
        if not 0.0 < target_delivery < 1.0:
            raise ConfigurationError(
                f"target_delivery must be in (0, 1), got {target_delivery}"
            )
        if estimator is None:
            estimator = LinkQualityEstimator(
                smoothing=smoothing, prior_loss=prior_loss
            )
        object.__setattr__(self, "max_retries", max_retries)
        object.__setattr__(self, "target_delivery", target_delivery)
        object.__setattr__(self, "estimator", estimator)

    @property
    def smoothing(self) -> float:
        """EWMA weight of the newest loss sample (the estimator's)."""
        return self.estimator.smoothing

    @property
    def prior_loss(self) -> float:
        """Loss assumed for never-observed links (the estimator's)."""
        return self.estimator.prior_loss

    @property
    def enabled(self) -> bool:
        """Adaptive ARQ always runs the ACK protocol (it needs the feedback)."""
        return True

    @property
    def label(self) -> int | str:
        return "adp"

    def link_loss(self, sender: int, receiver: int) -> float:
        """Current loss estimate for the directed link."""
        return self.estimator.loss(sender, receiver)

    def attempts_for(self, sender: int, receiver: int) -> int:
        loss = min(max(self.link_loss(sender, receiver), 0.0), 0.999)
        if loss <= 0.0:
            attempts = 1
        else:
            attempts = math.ceil(
                math.log(1.0 - self.target_delivery) / math.log(loss)
            )
        return max(1, min(attempts, self.max_attempts))

    def observe(self, sender: int, receiver: int, delivered: bool) -> None:
        self.estimator.observe(sender, receiver, delivered)

    # The frozen-dataclass __eq__/__repr__ inherited from ArqPolicy compare
    # and print ``max_retries`` alone, silently equating policies whose
    # learned per-link state (and even target_delivery/smoothing) differ.
    def __eq__(self, other: object) -> bool:
        return self is other

    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(max_retries={self.max_retries}, "
            f"target_delivery={self.target_delivery}, "
            f"smoothing={self.smoothing}, prior_loss={self.prior_loss}, "
            f"links_observed={self.estimator.num_links})"
        )


class FaultyTreeNetwork(TreeNetwork):
    """Tree network with pluggable fault injection and per-hop ARQ."""

    def __init__(
        self,
        tree: RoutingTree,
        ledger: EnergyLedger,
        plan: FaultPlan | None = None,
        arq: ArqPolicy | None = None,
        virtual_vertices: frozenset[int] | set[int] = frozenset(),
        link_stats: LinkQualityEstimator | None = None,
        core: str | None = None,
    ) -> None:
        super().__init__(tree, ledger, virtual_vertices, core=core)
        self.plan = plan if plan is not None else FaultPlan()
        self.arq = arq if arq is not None else ArqPolicy()
        if link_stats is None:
            # One shared per-link picture: an adaptive ARQ policy already
            # learns into an estimator, so repair and rotation read that
            # same one instead of keeping a private copy.
            link_stats = getattr(self.arq, "estimator", None)
        #: Per-directed-link loss/ETX estimates, fed by every ARQ exchange.
        self.link_stats = (
            link_stats if link_stats is not None else LinkQualityEstimator()
        )
        # When the policy learns into the shared estimator itself (its
        # ACK-confirmed viewpoint already covers the uplink), the network
        # must not fold the raw data-frame outcome in a second time.
        self._feeds_uplink_stats = (
            getattr(self.arq, "estimator", None) is not self.link_stats
        )
        self._track_sources = True
        #: Data frames that failed to reach their (live) parent, attempts
        #: counted individually.
        self.lost_transmissions = 0
        #: Extra data-frame attempts beyond the first, summed over hops.
        self.retransmissions = 0
        #: Acknowledgement frames put on the air by receiving parents.
        self.acks_sent = 0
        #: ACK frames that were lost (triggering a redundant retransmission).
        self.lost_acks = 0

    # -- round lifecycle ------------------------------------------------------

    def begin_faults_round(self, round_index: int) -> frozenset[int]:
        """Advance the fault plan by one round; returns newly dead vertices."""
        return self.plan.begin_round(self.tree, round_index)

    def live_sensor_nodes(self) -> tuple[int, ...]:
        """Sensor nodes that are up this round (not dead, not in an outage)."""
        return tuple(
            v for v in self.tree.sensor_nodes if not self.plan.is_down(v)
        )

    # -- engine fault hooks ---------------------------------------------------

    def _vertex_down(self, vertex: int) -> bool:
        return self.plan.is_down(vertex)

    def _down_mask(self) -> np.ndarray | None:
        plan = self.plan
        if not plan.dead and not plan.down:
            return None
        mask = np.zeros(self.tree.num_vertices, dtype=bool)
        if plan.dead:
            mask[list(plan.dead)] = True
        if plan.down:
            mask[list(plan.down)] = True
        return mask

    def _hop_delivered(
        self, vertex: int, parent: int, payload: Payload
    ) -> tuple[bool, int]:
        cost = message_bits(payload.payload_bits())
        distance = self.tree.link_distance[vertex]
        parent_down = self._vertex_down(parent)
        ack = ack_cost()
        arq = self.arq
        delivered = False
        bits = 0
        for attempt in range(max(1, arq.attempts_for(vertex, parent))):
            if attempt > 0:
                self.retransmissions += 1
            self._charges.charge_send(
                vertex, cost, values=payload.num_values(), link_distance=distance
            )
            bits += cost.total_bits
            if parent_down:
                frame_ok = False
            else:
                # The parent listens on its TDMA schedule whether or not the
                # frame survives the channel.
                self._charges.charge_recv(parent, cost)
                frame_ok = not self.plan.transmission_lost(vertex, parent)
                if self._feeds_uplink_stats:
                    # Channel truth for the uplink (a down parent is not a
                    # channel sample and must not poison the loss estimate).
                    self.link_stats.observe(vertex, parent, frame_ok)
            if frame_ok:
                delivered = True
            else:
                self.lost_transmissions += 1
            if not arq.enabled:
                break
            if frame_ok:
                # Parent acknowledges; the ACK rides the same lossy channel.
                self._charges.charge_send(parent, ack, link_distance=distance)
                self._charges.charge_recv(vertex, ack)
                self.acks_sent += 1
                bits += ack.total_bits
                ack_ok = not self.plan.transmission_lost(parent, vertex)
                # The ACK samples the downlink — the other half of ETX.
                self.link_stats.observe(parent, vertex, ack_ok)
                if ack_ok:
                    arq.observe(vertex, parent, True)
                    break
                self.lost_acks += 1
            else:
                # The child listens through the ACK window in vain.
                self._charges.charge_recv(vertex, ack)
            # From the sender's viewpoint only an ACK confirms the attempt.
            arq.observe(vertex, parent, False)
        return delivered, bits


class LossyTreeNetwork(FaultyTreeNetwork):
    """Back-compat facade: i.i.d. convergecast loss, no churn, no ARQ.

    This is the exact network ``extensions/loss.py`` shipped before the
    fault subsystem existed; it remains importable from there.
    """

    def __init__(
        self,
        tree: RoutingTree,
        ledger: EnergyLedger,
        loss_probability: float,
        rng: np.random.Generator,
    ) -> None:
        plan = FaultPlan(loss=IndependentLoss(loss_probability), rng=rng)
        super().__init__(tree, ledger, plan=plan)
        self.loss_probability = loss_probability
