"""Root fail-over: elect a successor sink and re-root the live tree.

Until this module, the sink was the one vertex the fault plan refused to
touch — ``FaultPlan`` rejected root deaths and outages outright, so every
recovery path could assume a live collection point.  Real deployments
cannot: the sink's radio fails like any other.  This module removes that
protection end to end:

* **Detection** — the plan may now kill or down the root like any vertex.
  A *dead* root triggers fail-over immediately; a transiently *down* root
  is given ``grace`` rounds to come back (rounds the driver serves in
  DEGRADED state, reason ``"root-down"``) before the network gives up on
  it.

* **Election** — the successor is chosen deterministically among the live,
  attached children of the failed root (fallback: the shallowest live
  sensors anywhere).  Candidates are ranked by observed link quality (mean
  ETX over their up physical neighbourhood, from the shared
  :class:`~repro.network.linkstats.LinkQualityEstimator`), then by subtree
  size (a bigger subtree means fewer orphans to re-attach), with a seeded
  random jitter breaking exact ties.  Each candidate announces itself with
  one ACK-sized election beacon heard by the other candidates — charged
  traffic, like everything else.

* **Hand-over** — the root-side query state migrates through the
  algorithm's :meth:`~repro.core.base.ContinuousQuantileAlgorithm.handover`
  hook: the successor's own measurement leaves the population (it is a
  sink now), the deposed root is retired permanently
  (:meth:`~repro.faults.plan.FaultPlan.retire` — the warm-standby model:
  an ex-sink does not rejoin as a battery sensor), and the successor
  floods one re-root announcement carrying the serialized root state
  (filter, counters, and whatever else the algorithm declares via
  ``handover_state_bits``).  All fail-over traffic is charged under the
  ``"failover"`` ledger phase.

* **Re-rooting** — the tree is rebuilt once, O(n), through
  :func:`~repro.network.tree.tree_multi_reparented` with ``new_root``:
  the old root's edge to the successor is reversed and the engine swaps
  the tree in (``retarget(..., allow_reroot=True)``), moving the ledger's
  sink role along.  The old root's *other* children become orphans with a
  down parent — the same round's ordinary repair pass re-attaches them,
  which is why the driver runs fail-over *before* repair (repair's
  reachability walk assumes a live root).

The migrated state is exactly a :meth:`detach` of the successor plus a
permanent detach of the (valueless) old root, so the stale-hints argument
that covers churn covers fail-over too: one round after the hand-over an
exact algorithm's answer again equals the oracle over the surviving
population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.network.tree import tree_multi_reparented
from repro.radio.message import ack_cost

#: Ledger phase every fail-over charge (beacons + state flood) books under.
FAILOVER_PHASE = "failover"


@dataclass(frozen=True)
class FailoverEvent:
    """One executed root fail-over (for reports, tests and the study)."""

    round_index: int
    old_root: int
    new_root: int
    #: Every vertex that stood in the election, winner included.
    candidates: tuple[int, ...]
    #: ``"root-dead"`` (permanent churn) or ``"root-down"`` (grace expired).
    reason: str
    #: Serialized root-state size [bits] flooded to seed the successor.
    handover_bits: int
    #: Total energy [J] the fail-over charged (election + state flood).
    energy_j: float


class RootFailover:
    """Detects a lost sink and executes the election + hand-over.

    One instance per :class:`~repro.faults.experiment.FaultDriver`; the
    driver calls :meth:`maybe_failover` at the top of every round, before
    the repair pass.
    """

    def __init__(
        self,
        net,
        graph=None,
        *,
        grace: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        if grace < 0:
            raise ConfigurationError(f"grace must be >= 0, got {grace}")
        self.net = net
        self.graph = graph
        self.grace = int(grace)
        self._rng = rng if rng is not None else np.random.default_rng(20140324)
        self._down_streak = 0
        self.events: list[FailoverEvent] = []
        self.handover_energy_j = 0.0

    @property
    def count(self) -> int:
        """Number of fail-overs executed so far."""
        return len(self.events)

    # -- detection -------------------------------------------------------------

    def root_unavailable(self) -> str | None:
        """Why the current sink cannot collect this round (``None`` = fine)."""
        plan = self.net.plan
        root = self.net.tree.root
        if plan.is_dead(root):
            return "root-dead"
        if plan.is_down(root):
            return "root-down"
        return None

    def maybe_failover(
        self,
        round_index: int,
        algorithm,
        *,
        repair=None,
        watchdog=None,
        state_providers=(),
    ) -> FailoverEvent | None:
        """Fail over if the sink is lost (and, for outages, out of grace).

        Returns the executed event, or ``None`` when the root is healthy,
        still within its outage grace, or no live successor exists (the
        driver serves those rounds degraded and retries next round).
        """
        reason = self.root_unavailable()
        if reason is None:
            self._down_streak = 0
            return None
        if reason == "root-down":
            self._down_streak += 1
            if self._down_streak <= self.grace:
                return None
        candidates = self._candidates(repair)
        if not candidates:
            return None
        event = self._execute(
            round_index, candidates, reason, algorithm, repair, watchdog,
            state_providers,
        )
        self._down_streak = 0
        self.events.append(event)
        self.handover_energy_j += event.energy_j
        return event

    # -- election --------------------------------------------------------------

    def _usable(self, vertex: int, detached) -> bool:
        tree = self.net.tree
        plan = self.net.plan
        return (
            vertex != tree.root
            and vertex not in tree.relays
            and not plan.is_dead(vertex)
            and not plan.is_down(vertex)
            and vertex not in detached
        )

    def _candidates(self, repair) -> tuple[int, ...]:
        """Live, attached root children; shallowest live sensors otherwise."""
        tree = self.net.tree
        detached = repair.detached if repair is not None else frozenset()
        children = tuple(
            v for v in tree.children[tree.root] if self._usable(v, detached)
        )
        if children:
            return children
        fallback = sorted(
            (v for v in tree.sensor_nodes if self._usable(v, detached)),
            key=lambda v: (tree.depth[v], v),
        )
        return tuple(fallback[: max(1, len(tree.children[tree.root]))])

    def _elect(self, candidates: tuple[int, ...]) -> int:
        tree = self.net.tree
        plan = self.net.plan
        stats = self.net.link_stats
        # One jitter draw per candidate, in sorted order — deterministic
        # for a given seed regardless of set/dict iteration.
        jitter = {v: float(self._rng.random()) for v in sorted(candidates)}

        def score(vertex: int):
            observed = [
                stats.etx(vertex, u)
                for u in self._neighbors(vertex)
                if not plan.is_dead(u)
                and not plan.is_down(u)
                and stats.link_observed(vertex, u)
            ]
            mean_etx = (
                sum(observed) / len(observed) if observed else float("inf")
            )
            return (mean_etx, -tree.subtree_size[vertex], jitter[vertex], vertex)

        return min(candidates, key=score)

    def _neighbors(self, vertex: int) -> tuple[int, ...]:
        if self.graph is not None:
            return self.graph.neighbors(vertex)
        tree = self.net.tree
        parent = tree.parent[vertex]
        up = () if parent < 0 else (parent,)
        return up + tree.children[vertex]

    # -- execution -------------------------------------------------------------

    def _execute(
        self,
        round_index: int,
        candidates: tuple[int, ...],
        reason: str,
        algorithm,
        repair,
        watchdog,
        state_providers,
    ) -> FailoverEvent:
        net = self.net
        tree = net.tree
        old_root = tree.root
        energy_before = float(net.ledger.energy.sum())

        self._charge_election(candidates)
        successor = self._elect(candidates)

        # Root-side state leaves with the old sink and re-forms on the
        # successor: the successor's value is detached (it measures no
        # more), the old root is permanently out.
        handover_bits = int(algorithm.handover(net, old_root, successor))
        for provider in state_providers:
            handover_bits += int(provider())

        distance = self._distance(old_root, successor)
        new_tree = tree_multi_reparented(
            tree, [(old_root, successor, distance)], new_root=successor
        )
        net.retarget(new_tree, allow_reroot=True)
        net.plan.retire(old_root)
        if repair is not None:
            # The deposed root enters the sensor set already detached —
            # the membership sync must not try to detach it a second time.
            repair.detached.add(old_root)

        # One flood from the new sink: the re-root announcement carrying
        # the serialized root state, charged under the fail-over phase.
        old_phase = net.phase
        net.phase = FAILOVER_PHASE
        try:
            net.broadcast(handover_bits)
        finally:
            net.phase = old_phase

        if watchdog is not None:
            members = (
                repair.reachable_sensors()
                if repair is not None
                else new_tree.sensor_nodes
            )
            watchdog.retarget(new_tree, members)

        energy_j = float(net.ledger.energy.sum()) - energy_before
        return FailoverEvent(
            round_index=round_index,
            old_root=old_root,
            new_root=successor,
            candidates=tuple(sorted(candidates)),
            reason=reason,
            handover_bits=handover_bits,
            energy_j=energy_j,
        )

    def _charge_election(self, candidates: tuple[int, ...]) -> None:
        """Each candidate beacons once; the other candidates listen."""
        net = self.net
        beacon = ack_cost()
        total_bits = 0
        for sender in sorted(candidates):
            net.ledger.charge_send(sender, beacon)
            total_bits += beacon.total_bits
            for receiver in candidates:
                if receiver != sender:
                    net.ledger.charge_recv(receiver, beacon)
        phase_bits = net.phase_bits
        phase_bits[FAILOVER_PHASE] = (
            phase_bits.get(FAILOVER_PHASE, 0) + total_bits
        )

    def _distance(self, a: int, b: int) -> float:
        if self.graph is None:
            return 0.0
        pa, pb = self.graph.positions[a], self.graph.positions[b]
        return float(np.hypot(pa[0] - pb[0], pa[1] - pb[1]))
