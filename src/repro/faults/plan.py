"""Pluggable fault plans: what goes wrong, when, on which link.

A :class:`FaultPlan` bundles the three failure modes the evaluation
studies — per-transmission link loss, permanent node death (churn), and
*transient* node outages (a node down for a bounded number of rounds, then
back) — behind the questions the network layer asks:

* "is this vertex dead?" (:meth:`FaultPlan.is_dead`),
* "is this vertex down right now?" (:meth:`FaultPlan.is_down` — dead *or*
  in a transient outage),
* "did this frame get lost?" (:meth:`FaultPlan.transmission_lost`),
* "who died this round?" (:meth:`FaultPlan.begin_round`).

Link loss is modelled per directed link so acknowledgements can be lost
independently of the data frames they confirm.  Two loss processes ship:

* :class:`IndependentLoss` — i.i.d. Bernoulli loss per transmission, the
  classical model (and what ``extensions/loss.py`` always simulated).
* :class:`GilbertElliottLoss` — the two-state Markov burst-loss model:
  each link flips between a good state (rare loss) and a bad/burst state
  (frequent loss).  Bursts are what interference and fading actually look
  like, and they hit convergecasts much harder than i.i.d. loss of the
  same average rate because a whole subtree goes dark at once.

Churn is modelled as *permanent* node death (battery failure, crush
damage): :class:`RandomChurn` kills each live sensor with a fixed per-round
hazard, :class:`ScheduledChurn` kills listed vertices at listed rounds
(deterministic scenarios for tests and ablations).

Transient outages (reboots, duty-cycle misses, temporary obstructions) are
the churn the repair layer can actually undo: an :class:`OutageModel`
decides which up nodes go down each round and for how long.
:class:`RandomOutages` draws geometric downtimes (memoryless recovery);
:class:`ScheduledOutages` scripts exact ``(vertex, duration)`` outages per
round for deterministic tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.network.tree import RoutingTree


def _validate_probability(name: str, value: float, upper_inclusive: bool = False) -> None:
    upper_ok = value <= 1.0 if upper_inclusive else value < 1.0
    if not (0.0 <= value and upper_ok):
        bound = "[0, 1]" if upper_inclusive else "[0, 1)"
        raise ConfigurationError(f"{name} must be in {bound}, got {value}")


class LinkLossModel(ABC):
    """Decides, per transmission attempt, whether a frame is lost.

    Randomness contract: :meth:`lost` must consume randomness exclusively
    through scalar ``rng.random()`` calls (any data-dependent number of
    them, including zero).  That is what lets
    :meth:`FaultPlan.batched_sampling` serve the same stream from
    block-drawn uniforms while leaving the generator in the exact state
    sequential sampling would have — the property the vectorized faulty
    convergecast's bit-for-bit equivalence rests on
    (``tests/test_fault_sampling.py``).
    """

    #: Long-run average loss rate, for labelling results.
    nominal_loss: float = 0.0

    @abstractmethod
    def lost(self, sender: int, receiver: int, rng: np.random.Generator) -> bool:
        """Sample one transmission over the directed link ``sender -> receiver``."""


class IndependentLoss(LinkLossModel):
    """I.i.d. Bernoulli loss: every transmission fails with ``probability``."""

    def __init__(self, probability: float) -> None:
        _validate_probability("loss probability", probability)
        self.probability = probability
        self.nominal_loss = probability

    def lost(self, sender: int, receiver: int, rng: np.random.Generator) -> bool:
        return self.probability > 0.0 and rng.random() < self.probability


class GilbertElliottLoss(LinkLossModel):
    """Bursty loss: a per-link two-state (good/bad) Markov chain.

    The chain advances one step per transmission attempt on the link; the
    loss probability of the attempt is the current state's (``loss_good``
    in the good state, ``loss_bad`` in the burst state).  Links start good.

    Args:
        p_enter_burst: per-transmission probability of a good link entering
            a burst.
        p_exit_burst: per-transmission probability of a burst ending
            (mean burst length is ``1 / p_exit_burst`` attempts).
        loss_good: loss probability while good (usually ~0).
        loss_bad: loss probability inside a burst (usually ~1).
    """

    def __init__(
        self,
        p_enter_burst: float,
        p_exit_burst: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> None:
        _validate_probability("p_enter_burst", p_enter_burst)
        if not 0.0 < p_exit_burst <= 1.0:
            raise ConfigurationError(
                f"p_exit_burst must be in (0, 1], got {p_exit_burst}"
            )
        _validate_probability("loss_good", loss_good)
        _validate_probability("loss_bad", loss_bad, upper_inclusive=True)
        self.p_enter_burst = p_enter_burst
        self.p_exit_burst = p_exit_burst
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        stationary_bad = (
            p_enter_burst / (p_enter_burst + p_exit_burst)
            if p_enter_burst > 0.0
            else 0.0
        )
        self.nominal_loss = (
            stationary_bad * loss_bad + (1.0 - stationary_bad) * loss_good
        )
        self._burst_state: dict[tuple[int, int], bool] = {}

    @classmethod
    def from_average(
        cls,
        average_loss: float,
        burst_length: float = 8.0,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> "GilbertElliottLoss":
        """A burst model matched to a target long-run average loss rate.

        Useful for apples-to-apples sweeps against :class:`IndependentLoss`:
        same average rate, different temporal structure.
        """
        _validate_probability("average_loss", average_loss)
        if burst_length < 1.0:
            raise ConfigurationError(
                f"burst_length must be >= 1, got {burst_length}"
            )
        if loss_bad <= loss_good:
            raise ConfigurationError("loss_bad must exceed loss_good")
        if average_loss < loss_good:
            raise ConfigurationError(
                "average_loss below loss_good is unreachable"
            )
        # Solve pi_bad * loss_bad + (1 - pi_bad) * loss_good = average_loss
        # for the stationary burst probability, then pick p_enter to realize
        # it at the requested mean burst length.
        pi_bad = (average_loss - loss_good) / (loss_bad - loss_good)
        if pi_bad >= 1.0:
            raise ConfigurationError("average_loss not reachable with loss_bad")
        p_exit = 1.0 / burst_length
        p_enter = p_exit * pi_bad / (1.0 - pi_bad)
        return cls(p_enter, p_exit, loss_good=loss_good, loss_bad=loss_bad)

    def lost(self, sender: int, receiver: int, rng: np.random.Generator) -> bool:
        link = (sender, receiver)
        bad = self._burst_state.get(link, False)
        if bad:
            bad = not (rng.random() < self.p_exit_burst)
        else:
            bad = rng.random() < self.p_enter_burst
        self._burst_state[link] = bad
        probability = self.loss_bad if bad else self.loss_good
        return probability > 0.0 and rng.random() < probability


class ChurnModel(ABC):
    """Decides which live sensors die (permanently) at each round start."""

    @abstractmethod
    def deaths(
        self,
        round_index: int,
        live: Sequence[int],
        rng: np.random.Generator,
    ) -> Iterable[int]:
        """Vertices among ``live`` that die entering ``round_index``."""


class RandomChurn(ChurnModel):
    """Memoryless churn: each live sensor dies with ``rate`` per round.

    ``start_round`` (default 1) leaves the initialization round clean so a
    query can at least be planted before the network starts crumbling.
    """

    def __init__(self, rate: float, start_round: int = 1) -> None:
        _validate_probability("churn rate", rate, upper_inclusive=True)
        if start_round < 0:
            raise ConfigurationError(f"start_round must be >= 0, got {start_round}")
        self.rate = rate
        self.start_round = start_round

    def deaths(
        self,
        round_index: int,
        live: Sequence[int],
        rng: np.random.Generator,
    ) -> Iterable[int]:
        if round_index < self.start_round or self.rate == 0.0 or not live:
            return ()
        mask = rng.random(len(live)) < self.rate
        return [vertex for vertex, dead in zip(live, mask) if dead]


class ScheduledChurn(ChurnModel):
    """Deterministic churn from an explicit ``{round: vertices}`` script."""

    def __init__(self, schedule: Mapping[int, Iterable[int]]) -> None:
        self.schedule = {
            int(round_index): tuple(vertices)
            for round_index, vertices in schedule.items()
        }

    def deaths(
        self,
        round_index: int,
        live: Sequence[int],
        rng: np.random.Generator,
    ) -> Iterable[int]:
        # Returned verbatim: the plan drops vertices that already died.
        # The current root may be listed — that schedules a root fail-over.
        return self.schedule.get(round_index, ())


class CompositeChurn(ChurnModel):
    """Union of several churn models' death sets, queried in order.

    Lets a deterministic script (e.g. a scheduled root kill) ride on top of
    a random hazard without touching either model: every part sees the same
    ``live`` pool and the shared generator, in construction order, so the
    random parts' draw sequences are unchanged by appending a scheduled
    part (which draws nothing).
    """

    def __init__(self, *parts: ChurnModel | None) -> None:
        self.parts: tuple[ChurnModel, ...] = tuple(
            part for part in parts if part is not None
        )

    def deaths(
        self,
        round_index: int,
        live: Sequence[int],
        rng: np.random.Generator,
    ) -> Iterable[int]:
        out: list[int] = []
        for part in self.parts:
            out.extend(part.deaths(round_index, live, rng))
        return out


class OutageModel(ABC):
    """Decides which up sensors go down *transiently* at each round start."""

    @abstractmethod
    def outages(
        self,
        round_index: int,
        candidates: Sequence[int],
        rng: np.random.Generator,
    ) -> Iterable[tuple[int, int]]:
        """``(vertex, duration)`` outages starting at ``round_index``.

        ``candidates`` are the sensors that are currently up (neither dead
        nor already in an outage).  ``duration`` counts rounds the vertex
        stays down, including this one; it must be >= 1.
        """


class RandomOutages(OutageModel):
    """Memoryless outages: each up sensor goes down with ``rate`` per round.

    Downtimes are geometric with mean ``mean_downtime`` rounds — the
    discrete analogue of exponential repair times.  ``start_round``
    (default 1) keeps the initialization round clean, mirroring
    :class:`RandomChurn`.
    """

    def __init__(
        self,
        rate: float,
        mean_downtime: float = 3.0,
        start_round: int = 1,
    ) -> None:
        _validate_probability("outage rate", rate, upper_inclusive=True)
        if mean_downtime < 1.0:
            raise ConfigurationError(
                f"mean_downtime must be >= 1 round, got {mean_downtime}"
            )
        if start_round < 0:
            raise ConfigurationError(f"start_round must be >= 0, got {start_round}")
        self.rate = rate
        self.mean_downtime = mean_downtime
        self.start_round = start_round

    def outages(
        self,
        round_index: int,
        candidates: Sequence[int],
        rng: np.random.Generator,
    ) -> Iterable[tuple[int, int]]:
        if round_index < self.start_round or self.rate == 0.0 or not candidates:
            return ()
        mask = rng.random(len(candidates)) < self.rate
        out: list[tuple[int, int]] = []
        for vertex, down in zip(candidates, mask):
            if not down:
                continue
            duration = int(rng.geometric(1.0 / self.mean_downtime))
            out.append((vertex, max(1, duration)))
        return out


class ScheduledOutages(OutageModel):
    """Deterministic outages from a ``{round: [(vertex, duration), ...]}`` script."""

    def __init__(
        self, schedule: Mapping[int, Iterable[tuple[int, int]]]
    ) -> None:
        self.schedule = {
            int(round_index): tuple(
                (int(vertex), int(duration)) for vertex, duration in outages
            )
            for round_index, outages in schedule.items()
        }

    def outages(
        self,
        round_index: int,
        candidates: Sequence[int],
        rng: np.random.Generator,
    ) -> Iterable[tuple[int, int]]:
        # Returned verbatim: the plan validates durations and duplicates.
        # The current root may be listed — the driver's grace window and
        # fail-over machinery absorb a down sink.
        return self.schedule.get(round_index, ())


class UniformBlockStream:
    """Serves scalar ``random()`` draws from block-drawn uniform batches.

    NumPy's ``Generator.random(n)`` produces exactly the values of ``n``
    scalar ``.random()`` calls *and* leaves the bit generator in exactly
    the state those scalar calls would (verified for PCG64, MT19937,
    Philox and SFC64 in ``tests/test_fault_sampling.py``).  The stream
    exploits that: it snapshots the generator state on entry, refills an
    internal buffer with one vectorized draw per ``block`` consumed
    uniforms, and on :meth:`close` rewinds the generator to the snapshot
    and advances it by exactly the number of uniforms actually handed
    out.  Callers that only ever invoke ``.random()`` therefore observe a
    stream — and leave behind a final generator state — bit-identical to
    sequential scalar sampling, while the underlying draws are amortized
    into batches.

    Only the zero-argument ``random()`` used by the link-loss models is
    proxied; any other attribute access falls through to the real
    generator, which would de-synchronize the rewind accounting — hence
    the explicit ``AttributeError`` guard.
    """

    __slots__ = ("_rng", "_block", "_state0", "_buffer", "_next", "consumed")

    def __init__(self, rng: np.random.Generator, block: int = 512) -> None:
        if block < 1:
            raise ConfigurationError(f"block must be >= 1, got {block}")
        self._rng = rng
        self._block = block
        self._state0 = rng.bit_generator.state
        self._buffer: np.ndarray = _EMPTY_F64
        self._next = 0
        #: Total scalar uniforms handed out so far.
        self.consumed = 0

    def random(self) -> float:
        """One uniform in [0, 1) — bit-identical to ``Generator.random()``."""
        if self._next >= self._buffer.shape[0]:
            self._buffer = self._rng.random(self._block)
            self._next = 0
        value = self._buffer[self._next]
        self._next += 1
        self.consumed += 1
        return float(value)

    def __getattr__(self, name: str):
        raise AttributeError(
            f"UniformBlockStream proxies only 'random'; a loss model asked "
            f"for {name!r}. Batched sampling requires loss models to draw "
            f"exclusively via scalar rng.random() (see LinkLossModel)."
        )

    def close(self) -> None:
        """Rewind the generator, then advance it by exactly ``consumed`` draws."""
        self._rng.bit_generator.state = self._state0
        if self.consumed:
            self._rng.random(self.consumed)
        self._buffer = _EMPTY_F64
        self._next = 0


_EMPTY_F64 = np.empty(0, dtype=np.float64)


class FaultPlan:
    """One deployment's failure script: loss + churn + outages + randomness.

    A plan with no model (the default) is a perfectly reliable network, so
    :class:`~repro.faults.network.FaultyTreeNetwork` degrades gracefully
    to the plain engine behaviour.
    """

    def __init__(
        self,
        loss: LinkLossModel | None = None,
        churn: ChurnModel | None = None,
        outages: OutageModel | None = None,
        rng: np.random.Generator | None = None,
        seed: int = 20140324,
    ) -> None:
        self.loss = loss
        self.churn = churn
        self.outages = outages
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        #: Permanently dead vertices.  Since root fail-over landed this may
        #: include the current (or a retired) sink: a dead root is a
        #: repairable event, not a configuration error — the fault driver
        #: elects a successor and re-roots the tree.
        self.dead: set[int] = set()
        #: Transiently down vertices -> remaining down rounds (this one
        #: included).  Disjoint from :attr:`dead` by construction.
        self.down: dict[int, int] = {}
        #: Vertices whose transient outage began this round.
        self.newly_down: frozenset[int] = frozenset()
        #: Vertices whose transient outage ended entering this round.
        self.newly_recovered: frozenset[int] = frozenset()

    @property
    def nominal_loss(self) -> float:
        """The loss model's long-run average rate (0.0 without one)."""
        return self.loss.nominal_loss if self.loss is not None else 0.0

    def begin_round(self, tree: RoutingTree, round_index: int) -> frozenset[int]:
        """Advance churn and outages by one round; returns the newly dead.

        Transient bookkeeping lands in :attr:`newly_down` /
        :attr:`newly_recovered`; the return value stays the set of newly
        *permanently* dead vertices (the original contract).
        """
        recovered = self._tick_outages()
        newly_dead = self._churn_deaths(tree, round_index)
        # A vertex can die the very round its outage would have ended: it
        # never recovers.
        self.newly_recovered = frozenset(v for v in recovered if v not in self.dead)
        self.newly_down = self._begin_outages(tree, round_index)
        return newly_dead

    def _tick_outages(self) -> list[int]:
        recovered: list[int] = []
        for vertex in list(self.down):
            self.down[vertex] -= 1
            if self.down[vertex] <= 0:
                del self.down[vertex]
                recovered.append(vertex)
        return recovered

    def _churn_deaths(self, tree: RoutingTree, round_index: int) -> frozenset[int]:
        if self.churn is None:
            return frozenset()
        # The hazard pool handed to random models stays sensors-only: the
        # *current* sink is mains-powered, so battery churn never samples
        # it (and the pool follows the current tree, so it tracks re-roots
        # without perturbing the RNG draw sequence).  Explicit scripts
        # (ScheduledChurn) may still name the root — root death is a
        # fail-over event now, not a configuration error.
        live = [v for v in tree.sensor_nodes if v not in self.dead]
        requested = frozenset(self.churn.deaths(round_index, live, self.rng))
        eligible = frozenset(live)
        if tree.root not in self.dead:
            eligible |= {tree.root}
        newly = requested & eligible
        self.dead |= newly
        # Death supersedes a pending outage: the vertex stays down forever.
        for vertex in newly:
            self.down.pop(vertex, None)
        return newly

    def _begin_outages(self, tree: RoutingTree, round_index: int) -> frozenset[int]:
        if self.outages is None:
            return frozenset()
        # Like churn: random models only ever sample the sensors of the
        # current tree, but scripted outages may take the sink down — the
        # driver rides out its grace window or fails over.
        candidates = [
            v
            for v in tree.sensor_nodes
            if v not in self.dead and v not in self.down
        ]
        requested = self.outages.outages(round_index, candidates, self.rng)
        started: set[int] = set()
        eligible = frozenset(candidates)
        if tree.root not in self.dead and tree.root not in self.down:
            eligible |= {tree.root}
        for vertex, duration in requested:
            if duration < 1:
                raise ConfigurationError(
                    f"outage duration must be >= 1 round, got {duration}"
                )
            if vertex not in eligible or vertex in started:
                continue
            self.down[vertex] = duration
            started.add(vertex)
        return frozenset(started)

    def retire(self, vertex: int) -> None:
        """Mark ``vertex`` permanently dead outside the churn pipeline.

        Root fail-over retires the deposed sink through this: whether it
        died outright or merely outlasted the grace window while down, the
        successor has taken over its state, so the old root never returns
        to the query (any pending outage is superseded).
        """
        self.dead.add(vertex)
        self.down.pop(vertex, None)

    def is_dead(self, vertex: int) -> bool:
        """True when ``vertex`` has permanently failed."""
        return vertex in self.dead

    def is_down(self, vertex: int) -> bool:
        """True when ``vertex`` is out right now (dead or transient outage)."""
        return vertex in self.dead or vertex in self.down

    def transmission_lost(self, sender: int, receiver: int) -> bool:
        """Sample one transmission attempt on ``sender -> receiver``."""
        return self.loss is not None and self.loss.lost(
            sender, receiver, self.rng
        )

    @contextmanager
    def batched_sampling(self, block: int = 512) -> Iterator[None]:
        """Serve loss draws from vectorized RNG batches inside the block.

        While active, :attr:`rng` is swapped for a
        :class:`UniformBlockStream` so every ``transmission_lost`` call —
        including through loss-model subclasses — consumes pre-drawn
        uniform blocks instead of one scalar generator call per attempt.
        On exit (normal or exceptional) the real generator is restored
        and advanced to the exact state sequential sampling would have
        left it in, so churn/outage draws in later rounds stay
        bit-identical across the object and vector cores.

        Sessions must not nest (the inner snapshot would capture the
        shim, not the generator), and the plan must not be shared across
        threads while a session is open.
        """
        real_rng = self.rng
        if isinstance(real_rng, UniformBlockStream):
            raise ConfigurationError("batched_sampling sessions cannot nest")
        stream = UniformBlockStream(real_rng, block=block)
        self.rng = stream  # type: ignore[assignment]
        try:
            yield
        finally:
            self.rng = real_rng
            stream.close()
