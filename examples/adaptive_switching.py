#!/usr/bin/env python3
"""Adaptive algorithm switching across changing environment dynamics.

The paper notes that POS, HBC and IQ are structurally similar enough to
switch between at runtime and leaves the selection heuristic to future work
(Section 4.2).  This example runs a workload whose dynamics *change
mid-flight* — a calm phase (IQ's regime) followed by a fast-oscillation
phase (where histogram refinement wins) — and shows the switcher following
the best fixed algorithm.
"""

import numpy as np

from repro import (
    HBC,
    IQ,
    QuerySpec,
    SimulationRunner,
    SyntheticWorkload,
    build_routing_tree,
    connected_random_graph,
)
from repro.extensions import AdaptiveQuantile

ROUNDS = 120


def main() -> None:
    rng = np.random.default_rng(5)
    graph = connected_random_graph(151, radio_range=35.0, rng=rng)
    tree = build_routing_tree(graph, root=0)

    calm = SyntheticWorkload(graph.positions, rng, period=250, noise_percent=2.0)
    wild = SyntheticWorkload(graph.positions, rng, period=8, noise_percent=20.0)

    def values(round_index):
        phase = calm if round_index < ROUNDS // 2 else wild
        return phase.values(round_index)

    spec = QuerySpec(phi=0.5, r_min=calm.r_min, r_max=calm.r_max)
    runner = SimulationRunner(tree, radio_range=35.0)

    print(f"{'algorithm':10s} {'uJ/round(hotspot)':>18s} {'lifetime':>10s}")
    for factory in (IQ, HBC):
        result = runner.run(factory(spec), values, ROUNDS)
        print(
            f"{factory.name:10s} {result.max_mean_round_energy_j * 1e6:18.2f} "
            f"{result.lifetime_rounds:10.0f}"
        )

    switcher = AdaptiveQuantile(spec, probe_every=12, probe_rounds=3)
    result = runner.run(switcher, values, ROUNDS)
    print(
        f"{'ADAPT':10s} {result.max_mean_round_energy_j * 1e6:18.2f} "
        f"{result.lifetime_rounds:10.0f}"
    )
    print(
        f"\nswitches performed: {switcher.switches}; "
        f"algorithm at the end: {switcher.active.name}"
    )
    print(f"all answers exact: {result.all_exact}")


if __name__ == "__main__":
    main()
