#!/usr/bin/env python3
"""Multi-quantile monitoring: tracking a whole distribution sketch.

Deployments often need more than the median: alarm thresholds watch the
extremes (φ = 0.05 / 0.95) while control loops use the quartiles.  The
quantile query of Definition 2.1 is rank-generic, so one IQ instance per φ
tracks each of them exactly.  This example renders a tiny text dashboard of
the evolving distribution and reports what the whole sketch costs.
"""

import numpy as np

from repro import (
    IQ,
    QuerySpec,
    SimulationRunner,
    SyntheticWorkload,
    build_routing_tree,
    connected_random_graph,
)

PHIS = (0.05, 0.25, 0.5, 0.75, 0.95)
ROUNDS = 50


def main() -> None:
    rng = np.random.default_rng(33)
    graph = connected_random_graph(201, radio_range=35.0, rng=rng)
    tree = build_routing_tree(graph, root=0)
    workload = SyntheticWorkload(
        graph.positions, rng, period=40, noise_percent=10.0
    )
    runner = SimulationRunner(tree, radio_range=35.0)

    traces = {}
    total_hotspot = 0.0
    for phi in PHIS:
        spec = QuerySpec(phi=phi, r_min=workload.r_min, r_max=workload.r_max)
        result = runner.run(IQ(spec), workload.values, ROUNDS)
        traces[phi] = result.quantile_series
        total_hotspot += result.max_mean_round_energy_j
        assert result.all_exact

    header = "round " + "".join(f"  phi={phi:4.2f}" for phi in PHIS)
    print(header)
    for round_index in range(0, ROUNDS, 5):
        row = f"{round_index:5d} " + "".join(
            f"  {traces[phi][round_index]:8d}" for phi in PHIS
        )
        print(row)

    print(
        f"\nfull 5-quantile sketch: hotspot pays "
        f"{total_hotspot * 1e6:.1f} uJ/round in total "
        f"(~{0.03 / total_hotspot:.0f} rounds of lifetime)"
    )
    spreads = [
        traces[0.95][i] - traces[0.05][i] for i in range(0, ROUNDS, 5)
    ]
    print(f"inter-tail spread over time: {spreads}")


if __name__ == "__main__":
    main()
