#!/usr/bin/env python3
"""Nodes with several sensors: quantiles over all readings at once.

Section 2 of the paper: "An extension ... to nodes producing multiple
values at a time is trivial since additional values could be interpreted as
received from artificial child nodes."  Here every physical device carries
three temperature probes (ground, 1 m, canopy), and the network tracks the
exact median over all 3·|N| readings.  The artificial children ride along
for free: their uplink to the hosting device is not a radio link.
"""

import numpy as np

from repro import (
    IQ,
    QuerySpec,
    build_routing_tree,
    connected_random_graph,
)
from repro.network.multivalue import expand_tree, expand_values
from repro.radio.energy import EnergyModel
from repro.radio.ledger import EnergyLedger
from repro.sim.engine import TreeNetwork
from repro.sim.oracle import exact_quantile, quantile_rank

NUM_DEVICES = 120
PROBES = 3
ROUNDS = 40


def main() -> None:
    rng = np.random.default_rng(21)
    graph = connected_random_graph(NUM_DEVICES + 1, radio_range=35.0, rng=rng)
    tree = build_routing_tree(graph, root=0)
    expansion = expand_tree(tree, values_per_node=PROBES)

    ledger = EnergyLedger(
        expansion.tree.num_vertices, expansion.tree.root, EnergyModel(), 35.0
    )
    net = TreeNetwork(expansion.tree, ledger, expansion.virtual_vertices)
    total_readings = NUM_DEVICES * PROBES
    k = quantile_rank(total_readings, 0.5)
    print(
        f"{NUM_DEVICES} devices x {PROBES} probes = {total_readings} readings, "
        f"median rank k={k}"
    )

    spec = QuerySpec(phi=0.5, r_min=0, r_max=600)
    algorithm = IQ(spec)
    base = rng.integers(150, 350, size=NUM_DEVICES)
    probe_offset = np.array([0, 12, 30])  # ground, 1 m, canopy

    for round_index in range(ROUNDS):
        drift = int(25 * np.sin(2 * np.pi * round_index / 40))
        noise = rng.integers(-3, 4, size=(NUM_DEVICES, PROBES))
        readings = base[:, None] + probe_offset[None, :] + drift + noise
        values = expand_values(expansion, readings)
        if round_index == 0:
            outcome = algorithm.initialize(net, values)
        else:
            outcome = algorithm.update(net, values)
        truth = exact_quantile(readings.ravel(), k)
        assert outcome.quantile == truth
        if round_index % 8 == 0:
            print(
                f"round {round_index:3d}: median over all probes = "
                f"{outcome.quantile} (exact: {outcome.quantile == truth})"
            )

    virtual = list(expansion.virtual_vertices)
    print(
        f"\nartificial children transmitted "
        f"{int(ledger.messages_sent[virtual].sum())} radio messages "
        f"(device-internal links are free)"
    )
    mask = ledger.sensor_mask()
    mask[virtual] = False
    hotspot = ledger.energy[mask].max() / ROUNDS
    print(f"hotspot device: {hotspot * 1e6:.1f} uJ/round")


if __name__ == "__main__":
    main()
