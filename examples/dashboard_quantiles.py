#!/usr/bin/env python3
"""Multi-query serving: one convergecast feeding a whole dashboard.

Registers a p50/p95/p99 grid plus one range predicate ("what fraction of
sensors read 200-599?") with the serving layer's query registry, runs
them all over a single shared gated collection, and prints what each
subscription costs — compared against the k-independent-runs alternative
of giving every query its own tracker.  Unlike ``quantile_dashboard.py``
(one exact IQ instance per φ), the serving layer amortizes: adding a
query to the registry is nearly free.
"""

import numpy as np

from repro import (
    QuerySpec,
    SyntheticWorkload,
    build_routing_tree,
    connected_random_graph,
)
from repro.core.sketchq import SketchQuantile
from repro.experiments.report import format_query_table
from repro.faults import FaultDriver, FaultPlan
from repro.serving import MultiQueryRunner, PhiQuery, QueryRegistry, RangeQuery

NODES = 200
ROUNDS = 40
EPS = 0.05


def mj_per_round(ledger, rounds: int) -> float:
    return float(np.sum(ledger.round_energy_history, axis=0).sum()) / rounds * 1e3


def main() -> None:
    rng = np.random.default_rng(33)
    graph = connected_random_graph(NODES + 1, radio_range=35.0, rng=rng)
    tree = build_routing_tree(graph, root=0)
    workload = SyntheticWorkload(
        graph.positions, rng, period=40, noise_percent=10.0
    )
    spec = QuerySpec(r_min=workload.r_min, r_max=workload.r_max)

    registry = QueryRegistry()
    registry.register(PhiQuery("p50", phis=(0.5,), eps=EPS))
    registry.register(PhiQuery("p95", phis=(0.95,), eps=EPS))
    registry.register(PhiQuery("p99", phis=(0.99,), eps=EPS))
    registry.register(RangeQuery("frac[200,599]", low=200, high=599, eps=EPS))

    runner = MultiQueryRunner(registry, spec, tree, workload, graph=graph)
    runner.run(ROUNDS)
    total = mj_per_round(runner.driver.ledger, ROUNDS)

    print(
        format_query_table(
            runner.stats(),
            title=(
                f"serving {len(registry)} queries over one convergecast "
                f"({NODES} nodes, {ROUNDS} rounds, eps={EPS})"
            ),
        )
    )

    # The alternative: one dedicated gated tracker per query.
    baseline_driver = FaultDriver(
        lambda s: SketchQuantile(s, eps=EPS),
        spec,
        tree,
        workload,
        FaultPlan(),
        graph=graph,
    )
    baseline_driver.run(ROUNDS)
    single = mj_per_round(baseline_driver.ledger, ROUNDS)

    k = len(registry)
    print("\ncost vs k independent trackers")
    print(f"{'setup':>26s} {'mJ/round':>9s} {'per query':>10s} {'vs shared':>10s}")
    shared_per_query = total / k
    rows = [
        ("shared convergecast", total, shared_per_query, 1.0),
        ("one dedicated tracker", single, single, single / shared_per_query),
        (f"{k} independent trackers", single * k, single, single / shared_per_query),
    ]
    for label, whole, per_query, factor in rows:
        print(
            f"{label:>26s} {whole:9.3f} {per_query:10.3f} {factor:9.1f}x"
        )
    print(
        f"\nserving all {k} queries costs {total / single:.2f}x one tracker "
        f"— the {k}-independent-runs alternative would cost "
        f"{single * k / total:.1f}x more radio energy."
    )


if __name__ == "__main__":
    main()
