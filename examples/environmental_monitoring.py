#!/usr/bin/env python3
"""Environmental monitoring: barometric pressure over a 300-node network.

Mirrors the paper's air-pressure study (Section 5.2.5): nodes measure
pressure in 0.1 hPa steps, are placed by a self-organizing map so that
neighbours measure similar values, and the base station continuously tracks
the exact median.  All six algorithms from the paper run on the *same*
deployment and trace, so their radio costs are directly comparable.
"""

import numpy as np

from repro import (
    HBC,
    IQ,
    POS,
    TAG,
    LCLLHierarchical,
    LCLLSlip,
    QuerySpec,
    SimulationRunner,
    build_routing_tree,
)
from repro.datasets.pressure import PressureWorkload
from repro.network.topology import build_physical_graph

ROUNDS = 100


def main() -> None:
    rng = np.random.default_rng(7)
    workload = PressureWorkload(rng, num_nodes=300, num_rounds=ROUNDS)
    graph = build_physical_graph(workload.positions, radio_range=35.0)
    tree = build_routing_tree(graph, root=workload.root)
    spec = QuerySpec(phi=0.5, r_min=workload.r_min, r_max=workload.r_max)
    runner = SimulationRunner(tree, radio_range=35.0)

    print(
        f"{workload.num_sensor_nodes} nodes, universe "
        f"[{workload.r_min}, {workload.r_max}] (0.1 hPa steps), "
        f"{ROUNDS} rounds\n"
    )
    print(
        f"{'algorithm':10s} {'uJ/round(hotspot)':>18s} {'lifetime':>10s} "
        f"{'refinements':>12s} {'exact':>6s}"
    )
    median_trace = None
    for factory in (TAG, POS, HBC, IQ, LCLLHierarchical, LCLLSlip):
        result = runner.run(factory(spec), workload.values, ROUNDS)
        print(
            f"{factory.name:10s} {result.max_mean_round_energy_j * 1e6:18.2f} "
            f"{result.lifetime_rounds:10.0f} {result.total_refinements:12d} "
            f"{str(result.all_exact):>6s}"
        )
        median_trace = result.quantile_series

    assert median_trace is not None
    in_hpa = [value * 0.1 for value in median_trace[::10]]
    print("\nmedian pressure every 10th round [hPa]:")
    print("  " + "  ".join(f"{value:.1f}" for value in in_hpa))


if __name__ == "__main__":
    main()
