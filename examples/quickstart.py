#!/usr/bin/env python3
"""Quickstart: a continuous median query over a simulated sensor network.

Builds a 150-node deployment, runs the paper's IQ algorithm for 60 rounds
of a slowly changing synthetic phenomenon, and prints the tracked median
together with the radio cost that tracking it actually incurred.
"""

import numpy as np

from repro import (
    IQ,
    QuerySpec,
    SimulationRunner,
    SyntheticWorkload,
    build_routing_tree,
    connected_random_graph,
)


def main() -> None:
    rng = np.random.default_rng(2014)

    # 1. Deploy 150 sensor nodes (plus the sink) with a 35 m radio range
    #    and route everything over a shortest-path tree.
    graph = connected_random_graph(151, radio_range=35.0, rng=rng)
    tree = build_routing_tree(graph, root=0)

    # 2. A synthetic phenomenon: spatially correlated initial values that
    #    drift sinusoidally (period 60 rounds) with 5% measurement noise.
    workload = SyntheticWorkload(
        graph.positions, rng, period=60, noise_percent=5.0
    )

    # 3. Ask for the exact, continuously maintained median.
    spec = QuerySpec(phi=0.5, r_min=workload.r_min, r_max=workload.r_max)
    runner = SimulationRunner(tree, radio_range=35.0)
    result = runner.run(IQ(spec), workload.values, num_rounds=60)

    print(f"tracked {result.num_rounds} rounds, all exact: {result.all_exact}")
    print(f"median trace (every 5th round): {result.quantile_series[::5]}")
    print(f"refinement convergecasts needed: {result.total_refinements}")
    print(
        "hotspot node consumes "
        f"{result.max_mean_round_energy_j * 1e6:.1f} uJ/round "
        f"=> network lifetime ~{result.lifetime_rounds:.0f} rounds"
    )


if __name__ == "__main__":
    main()
