#!/usr/bin/env python3
"""Approximate quantiles: trading bounded rank error for radio energy.

Two parts:

1. The mergeable sketches on their own — build q-digests from raw value
   sets, merge them in arbitrary order (as a convergecast would) and
   compare the answer and its honest payload size against the truth.
2. The continuous SketchQuantile algorithm on a simulated deployment —
   the exact TAG baseline against the sketch convergecast at several
   error budgets eps, showing measured rank error <= eps * |N| while the
   hotspot node's energy bill shrinks.
"""

import numpy as np

from repro import (
    QDigest,
    QuerySpec,
    SimulationRunner,
    SketchQuantile,
    SyntheticWorkload,
    TAG,
    build_routing_tree,
    connected_random_graph,
    exact_quantile,
)


def sketch_basics() -> None:
    rng = np.random.default_rng(2014)
    readings = [rng.integers(0, 1024, size=500) for _ in range(4)]

    # Each region summarizes its own readings; eps bounds the rank error.
    digests = [
        QDigest.from_values(chunk, eps=0.05, r_min=0, r_max=1023)
        for chunk in readings
    ]
    merged = digests[0]
    for digest in digests[1:]:
        merged = merged.merged(digest)

    everything = np.concatenate(readings)
    k = len(everything) // 2
    truth = exact_quantile(everything, k)
    answer = merged.quantile(k)
    raw_bits = len(everything) * 16

    print("-- mergeable q-digest --")
    print(f"median of {len(everything)} readings: exact {truth}, "
          f"sketch {answer} (budget +-{0.05 * len(everything):.0f} ranks)")
    print(f"payload: {merged.payload_bits()} bits vs {raw_bits} bits raw "
          f"({merged.num_entries()} stored entries)")
    print()


def continuous_tracking() -> None:
    rng = np.random.default_rng(2014)
    graph = connected_random_graph(301, radio_range=35.0, rng=rng)
    tree = build_routing_tree(graph, root=0)
    workload = SyntheticWorkload(graph.positions, rng)
    spec = QuerySpec(phi=0.5, r_min=workload.r_min, r_max=workload.r_max)
    runner = SimulationRunner(tree, radio_range=35.0)

    print("-- continuous tracking, 300 nodes x 40 rounds --")
    print(f"{'algorithm':10s} {'uJ/round':>9s} {'mean-err':>9s} "
          f"{'max-err':>8s} {'budget':>7s}")

    result = runner.run(TAG(spec), workload.values, num_rounds=40)
    print(f"{'TAG':10s} {result.max_mean_round_energy_j * 1e6:9.1f} "
          f"{result.mean_rank_error:9.2f} {result.max_rank_error:8d} "
          f"{'exact':>7s}")

    for eps in (0.02, 0.05, 0.1):
        algorithm = SketchQuantile(spec, eps=eps, gated=True)
        result = runner.run(algorithm, workload.values, num_rounds=40)
        print(f"{algorithm.name + f'@{eps:g}':10s} "
              f"{result.max_mean_round_energy_j * 1e6:9.1f} "
              f"{result.mean_rank_error:9.2f} {result.max_rank_error:8d} "
              f"{eps * tree.num_sensor_nodes:7.1f}")


if __name__ == "__main__":
    sketch_basics()
    continuous_tracking()
