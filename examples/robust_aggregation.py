#!/usr/bin/env python3
"""Why medians? Robust in-network aggregation with defective sensors.

The paper motivates quantile queries with their robustness: "in a set of
values 3,3,3,3,103 with 103 representing an outlier, the median query would
return 3, while the average would be 23" (Section 1).  This example injects
a growing fraction of defective nodes (stuck-at-max readings) into a
deployment and tracks both the true field value, the network median (via
the IQ algorithm) and the average — the median barely moves, the average
runs away.
"""

import numpy as np

from repro import (
    IQ,
    QuerySpec,
    SimulationRunner,
    SyntheticWorkload,
    build_routing_tree,
    connected_random_graph,
)

DEFECT_RATES = (0.0, 0.02, 0.05, 0.10, 0.20)
ROUNDS = 30


def main() -> None:
    rng = np.random.default_rng(99)
    graph = connected_random_graph(201, radio_range=35.0, rng=rng)
    tree = build_routing_tree(graph, root=0)
    base = SyntheticWorkload(
        graph.positions, rng, period=250, noise_percent=2.0
    )
    spec = QuerySpec(phi=0.5, r_min=base.r_min, r_max=base.r_max)
    sensors = list(tree.sensor_nodes)

    print(f"{'defective':>10s} {'median':>8s} {'average':>9s} {'median drift':>13s}")
    clean_median = None
    for rate in DEFECT_RATES:
        defective = rng.choice(
            sensors, size=int(rate * len(sensors)), replace=False
        )

        def values(round_index, defective=defective):
            readings = base.values(round_index).copy()
            readings[defective] = base.r_max  # stuck-at-max sensors
            return readings

        runner = SimulationRunner(tree, radio_range=35.0)
        result = runner.run(IQ(spec), values, ROUNDS)
        final = values(ROUNDS - 1)[sensors]
        median = result.quantile_series[-1]
        average = float(final.mean())
        if clean_median is None:
            clean_median = median
        print(
            f"{rate:10.0%} {median:8d} {average:9.1f} "
            f"{median - clean_median:+13d}"
        )

    print(
        "\nThe exact median (computed fully in-network) shifts by a few "
        "units while\nthe average chases the stuck sensors — the paper's "
        "core motivation for\nenergy-efficient quantile queries."
    )


if __name__ == "__main__":
    main()
