#!/usr/bin/env python3
"""A read-heavy dashboard over the root-side history service.

The network answers "what is the p95 *now*"; most dashboard traffic asks
about the recent past — "p95 over the last half hour", "the decayed
trend", "what did we serve at round 12?".  The
:class:`~repro.serving.history.HistoryStore` answers all of that at the
root, from bounded-memory summaries, without a single extra radio frame.

This example serves a φ-grid under loss and transient churn, then
replays a dashboard against the store: sliding windows,
exponentially decayed estimates, historical point reads and the all-time
summary quantile, with staleness (``age_rounds``) and the read-cache hit
rate reported.  Degraded rounds age the ``latest`` read but never perturb
the summaries.
"""

import numpy as np

from repro.datasets.synthetic import SyntheticWorkload
from repro.faults import ArqPolicy, FaultPlan
from repro.faults.plan import IndependentLoss, RandomOutages
from repro.network.routing import build_routing_tree
from repro.network.topology import connected_random_graph
from repro.serving import (
    MultiQueryRunner,
    PhiQuery,
    QueryRegistry,
    phi_label,
)
from repro.types import QuerySpec

PHIS = (0.5, 0.95)
ROUNDS = 60
WINDOWS = (8, 16, 32)
HALF_LIVES = (4.0, 16.0)


def main() -> None:
    rng = np.random.default_rng(5)
    graph = connected_random_graph(81, radio_range=35.0, rng=rng)
    tree = build_routing_tree(graph, root=0)
    workload = SyntheticWorkload(graph.positions, rng, period=40)
    spec = QuerySpec(r_min=workload.r_min, r_max=workload.r_max)

    registry = QueryRegistry()
    for phi in PHIS:
        registry.register(PhiQuery(phi_label(phi), phis=(phi,)))
    runner = MultiQueryRunner(
        registry,
        spec,
        tree,
        workload,
        FaultPlan(
            loss=IndependentLoss(0.05),
            outages=RandomOutages(0.02),
            seed=5,
        ),
        ArqPolicy(max_retries=2),
        graph=graph,
    )
    served = runner.run(ROUNDS)
    store = runner.history
    degraded = sum(1 for s in served if s.report.degraded)

    print(
        f"served {len(served)} rounds ({degraded} degraded) — "
        f"now reading history, zero radio cost\n"
    )
    for name in (phi_label(phi) for phi in PHIS):
        latest = store.latest(name)
        print(
            f"{name}: latest {latest.value:g} "
            f"(age {latest.age_rounds} rounds, "
            f"{'trustworthy' if latest.trustworthy else 'NOT trustworthy'})"
        )
        for n in WINDOWS:
            read = store.window(name, n)
            print(
                f"  median of last {n:3d} rounds: {read.value:7.1f} "
                f"({read.count} rounds retained)"
            )
        for half_life in HALF_LIVES:
            read = store.decayed(name, half_life)
            print(f"  decayed (half-life {half_life:4.1f}): {read.value:7.1f}")
        summary = store.summary_quantile(name, 0.5)
        print(
            f"  all-time median (incremental summary over "
            f"{summary.count} rounds): {summary.value:7.1f}"
        )
        past = store.at_round(name, ROUNDS // 2)
        print(
            f"  at round {ROUNDS // 2}: {past.value:g} "
            f"(observed round {past.round_index})\n"
        )

    # A dashboard polls the same reads every round: the second pass is
    # served entirely from the per-query read cache.
    for name in (phi_label(phi) for phi in PHIS):
        for n in WINDOWS:
            store.window(name, n)
    for stats in store.cache_stats():
        if stats.query.startswith("__"):
            continue
        print(
            f"read cache [{stats.query}]: {stats.hits} hits / "
            f"{stats.misses} misses ({stats.hit_rate:.0%} hit rate, "
            f"{stats.entries} entries)"
        )
    print(
        "bounded memory: "
        + ", ".join(
            f"{q}<={store.size_items(q)} items"
            for q in store.queries()
            if not q.startswith("__")
        )
    )


if __name__ == "__main__":
    main()
