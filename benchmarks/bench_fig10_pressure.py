"""Figure 10: air-pressure dataset, varying the sampling rate (skip).

Paper shapes (Section 5.2.5): skipping more samples weakens the temporal
correlation, so every continuous approach gets more expensive; POS-family
approaches are barely affected by the optimistic/pessimistic range scaling
(their cost depends on candidate counts, not the universe); LCLL-H improves
under the pessimistic scaling, where measurements are close together
relative to its bucket widths.
"""

from __future__ import annotations

from repro.experiments.sweeps import PRESSURE_SKIPS, sweep_pressure

from benchmarks.common import archive, base_pressure_config, report, run_once


def compute():
    base = base_pressure_config()
    optimistic = sweep_pressure(
        skips=PRESSURE_SKIPS, pessimistic=False, base=base, scale=1.0
    )
    pessimistic = sweep_pressure(
        skips=PRESSURE_SKIPS, pessimistic=True, base=base, scale=1.0
    )
    return optimistic, pessimistic


def test_fig10_pressure_sampling_rate(benchmark):
    optimistic, pessimistic = run_once(benchmark, compute)
    text_opt = report(
        optimistic, "Figure 10a", "air pressure, optimistic range scaling"
    )
    text_pes = report(
        pessimistic, "Figure 10b", "air pressure, pessimistic range scaling"
    )
    archive("figure_10", text_opt + "\n" + text_pes)

    for result in (optimistic, pessimistic):
        # Weaker temporal correlation costs all continuous approaches.
        for name in ("POS", "HBC", "IQ", "LCLL-S"):
            energy = result.energy_series(name)
            assert energy[-1] > energy[0], name

    # POS-family approaches are insensitive to the range scaling.
    for name in ("POS", "IQ"):
        opt0 = optimistic.energy_series(name)[0]
        pes0 = pessimistic.energy_series(name)[0]
        assert abs(opt0 - pes0) / opt0 < 0.25, name

    # LCLL-H benefits from the pessimistic setting at the densest sampling.
    assert (
        pessimistic.energy_series("LCLL-H")[0]
        <= optimistic.energy_series("LCLL-H")[0] * 1.05
    )
