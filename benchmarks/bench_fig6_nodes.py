"""Figure 6: maximum per-node energy and lifetime vs. the node count |N|.

Paper shapes (Section 5.2.1): every algorithm's hotspot energy grows with
|N| (denser networks mean more receptions); LCLL-S scales best at large |N|
thanks to its very selective refinement interval but is comparatively poor
at small |N|; TAG's full collection is the most expensive at large |N|.
"""

from __future__ import annotations

from repro.experiments.sweeps import NODE_COUNTS, sweep

from benchmarks.common import base_config, report, run_once, scaled_values


def compute():
    # Fewer than ~75 nodes cannot reliably form a connected deployment at
    # the default 35 m radio range (the paper's smallest setting is 125).
    return sweep(
        "num_nodes",
        values=scaled_values(NODE_COUNTS, minimum=75),
        base=base_config(),
        scale=1.0,  # the base is already bench-scaled; keep node counts
    )


def test_fig6_varying_nodes(benchmark):
    result = run_once(benchmark, compute)
    report(result, "Figure 6", "synthetic dataset, varying |N|")

    xs = result.xs
    largest, smallest = xs[-1], xs[0]
    energy_at = {
        name: dict(zip(xs, result.energy_series(name))) for name in result.series
    }
    # Every algorithm gets more expensive as the network densifies.
    for name, series in energy_at.items():
        assert series[largest] > series[smallest], name
    # TAG's full collection dominates from a few hundred nodes on (the
    # paper cuts its curves off for exactly this reason); below that the
    # k-pruned collection is genuinely competitive, so only assert the
    # crossover when the sweep reaches the regime.
    if largest >= 250:
        competitors = ("POS", "HBC", "IQ", "LCLL-S")
        assert all(
            energy_at["TAG"][largest] > energy_at[name][largest]
            for name in competitors
        )
    # IQ leads the continuous approaches under temporal correlation.
    assert energy_at["IQ"][largest] < energy_at["POS"][largest]
    assert energy_at["IQ"][largest] < energy_at["HBC"][largest]
