"""Ablation: the improvements POS/HBC take for granted in the evaluation.

Three claims from the paper's text, verified head to head:

1. hints "can significantly reduce the length of the refinement interval
   and therefore reduce the number of refinements" (Section 3.2) — POS
   with vs. without hint-bounded search;
2. the direct-value request avoids refinements altogether on small
   candidate sets (Section 3.2, final improvement);
3. recomputing the bucket count per round changes performance only
   marginally (Section 4.1.1: "we did not recompute b during each round
   since we observed that the difference in performance was marginal").
"""

from __future__ import annotations

from repro.baselines.pos import POS
from repro.core.hbc import HBC
from repro.experiments.runner import run_synthetic_experiment

from benchmarks.common import archive, base_config, bench_scale, run_once


def compute():
    base = base_config(
        r_max=65535, period=max(8, round(63 * bench_scale()))
    )
    algorithms = {
        "POS": lambda spec: POS(spec),
        "POS-nohints": lambda spec: POS(spec, use_hints=False),
        "POS-nodirect": lambda spec: POS(spec, direct_request_limit=0),
        "HBC": lambda spec: HBC(spec),
        "HBC-recompute": lambda spec: HBC(spec, recompute_buckets=True),
    }
    return run_synthetic_experiment(base, algorithms), base


def test_ablation_improvements(benchmark):
    metrics, config = run_once(benchmark, compute)

    lines = [
        f"improvement ablations ({config.num_nodes} nodes, "
        f"universe {config.r_max + 1})",
        f"{'variant':14s} {'maxE [mJ]':>11s} {'refin/rnd':>10s} {'exch/rnd':>9s}",
    ]
    for name, m in metrics.items():
        lines.append(
            f"{name:14s} {m.max_energy_mj:11.4f} "
            f"{m.refinements_per_round:10.2f} {m.exchanges_per_round:9.2f}"
        )
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    archive("ablation_improvements", text)

    # 1. Hints cut POS's refinement count.
    assert (
        metrics["POS"].refinements_per_round
        < metrics["POS-nohints"].refinements_per_round
    )
    assert metrics["POS"].max_energy_mj <= metrics["POS-nohints"].max_energy_mj
    # 2. The direct request trades refinement iterations for value shipping:
    # strictly fewer refinement exchanges with it enabled.
    assert (
        metrics["POS"].refinements_per_round
        < metrics["POS-nodirect"].refinements_per_round + 0.01
    )
    assert (
        metrics["POS"].exchanges_per_round
        <= metrics["POS-nodirect"].exchanges_per_round
    )
    # 3. Per-round bucket recomputation is marginal, as the paper observed.
    fixed = metrics["HBC"].max_energy_mj
    recomputed = metrics["HBC-recompute"].max_energy_mj
    assert abs(fixed - recomputed) / fixed < 0.15
    assert metrics["HBC-recompute"].all_exact
