"""Ablation: does idle/sleep cost change the paper's conclusions?

Section 5.1.4 sets the sleeping cost to zero because it "depends highly on
the underlying MAC layer".  That is a threat to validity: with duty-cycled
radios, a fixed per-round idle cost dilutes the differences the evaluation
reports.  This ablation charges every sensor a per-round idle budget of 0%,
~50% and ~200% of IQ's active hotspot consumption and checks that the
*ordering* of the algorithms — the paper's actual claim — survives, even
as the relative gaps compress.
"""

from __future__ import annotations

from repro.experiments.config import default_algorithms
from repro.experiments.runner import run_synthetic_experiment
from repro.radio.energy import EnergyModel

from benchmarks.common import archive, base_config, run_once

#: Idle budgets [J/round]: zero (the paper), moderate, dominant.
IDLE_LEVELS = (0.0, 40e-6, 160e-6)


def compute():
    base = base_config()
    out = {}
    for idle in IDLE_LEVELS:
        model = EnergyModel(idle_cost_per_round=idle)
        out[idle] = run_synthetic_experiment(
            base, default_algorithms(), energy_model=model
        )
    return out, base


def test_ablation_idle_cost(benchmark):
    results, config = run_once(benchmark, compute)

    lines = [
        f"idle-cost ablation ({config.num_nodes} nodes) — max energy [mJ]",
        f"{'algorithm':10s} "
        + "".join(f"{f'idle={idle * 1e6:.0f}uJ':>14s}" for idle in IDLE_LEVELS),
    ]
    names = list(results[0.0])
    for name in names:
        lines.append(
            f"{name:10s} "
            + "".join(
                f"{results[idle][name].max_energy_mj:14.4f}"
                for idle in IDLE_LEVELS
            )
        )
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    archive("ablation_idle_cost", text)

    # The winner (IQ at the paper's operating point) survives idle costs...
    for idle in IDLE_LEVELS:
        energies = {
            name: results[idle][name].max_energy_mj for name in names
        }
        assert min(energies, key=energies.get) == "IQ"
    # ...but the relative gap compresses as fixed costs dominate.
    def gap(idle):
        energies = [results[idle][name].max_energy_mj for name in names]
        return max(energies) / min(energies)

    assert gap(IDLE_LEVELS[-1]) < gap(0.0)
    # The idle charge itself is accounted: energy strictly grows with it.
    for name in names:
        series = [results[idle][name].max_energy_mj for idle in IDLE_LEVELS]
        assert series == sorted(series)
