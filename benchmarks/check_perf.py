"""CI perf gate: compare fresh ``BENCH_*.json`` records against baselines.

Every benchmark run emits machine-readable perf records via
``benchmarks/common.py::emit_perf``.  This script compares the fresh
records (``benchmarks/results/``) against the committed baselines
(``benchmarks/baselines/``) and fails the build when a hot path regressed:

* metrics whose key ends in ``rounds_per_sec`` or ``reads_per_sec`` are
  higher-is-better and may not drop more than ``--max-slowdown``
  (default 25%) below baseline;
* ``peak_rss_kb`` is lower-is-better and may not grow more than
  ``--max-rss-growth`` (default 20%) above baseline;
* every other numeric metric is informational.

Records are only compared at matching ``scale`` (a record measured at
``REPRO_BENCH_SCALE=0.15`` says nothing about a 0.05 baseline): a scale
mismatch warns and skips the file.  A fresh record without a committed
baseline warns and passes only for *genuinely new* benchmarks; when the
repo root already holds a committed ``BENCH_<name>.json`` whose content
differs from the fresh record (``emit_perf`` writes both copies in one
shot, so a differing root copy predates this run), the missing baseline
is a silent gate bypass and fails hard.  A malformed record
(unparseable, or not a JSON object) is a hard failure either side:
silent corruption must not read as "no regression".

Refresh the baselines with ``--update`` (locally, or via the
``refresh_baselines`` workflow_dispatch input) after an intentional perf
change, and commit the result.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
BASELINES_DIR = Path(__file__).parent / "baselines"
#: Repo root, where ``emit_perf`` commits the diffable trajectory copy.
REPO_ROOT = Path(__file__).parent.parent

#: Relative drop allowed on higher-is-better throughput metrics.
DEFAULT_MAX_SLOWDOWN = 0.25
#: Relative growth allowed on peak RSS.
DEFAULT_MAX_RSS_GROWTH = 0.20


class MalformedRecord(Exception):
    """A perf record that cannot be trusted (bad JSON, wrong shape)."""


def load_record(path: Path) -> dict:
    """Parse one ``BENCH_*.json``; raises :class:`MalformedRecord`."""
    try:
        record = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise MalformedRecord(f"{path}: unreadable perf record: {exc}") from exc
    if not isinstance(record, dict):
        raise MalformedRecord(
            f"{path}: perf record must be a JSON object, got "
            f"{type(record).__name__}"
        )
    return record


def numeric_leaves(record, prefix: str = "") -> dict[str, float]:
    """Flatten a record to ``dotted.path -> value`` for its numeric leaves."""
    leaves: dict[str, float] = {}
    if isinstance(record, dict):
        for key, value in record.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(numeric_leaves(value, path))
    elif isinstance(record, list):
        for index, value in enumerate(record):
            leaves.update(numeric_leaves(value, f"{prefix}[{index}]"))
    elif isinstance(record, (int, float)) and not isinstance(record, bool):
        leaves[prefix] = float(record)
    return leaves


def metric_kind(path: str) -> str | None:
    """Gated metric class of a flattened path, or ``None`` if informational."""
    leaf = path.rsplit(".", 1)[-1]
    if leaf.endswith("rounds_per_sec") or leaf.endswith("reads_per_sec"):
        return "throughput"
    if leaf == "peak_rss_kb":
        return "rss"
    return None


def compare_record(
    name: str,
    fresh: dict,
    baseline: dict,
    max_slowdown: float,
    max_rss_growth: float,
) -> tuple[list[str], list[str]]:
    """Compare one fresh record to its baseline.

    Returns ``(failures, notes)`` — human-readable lines; any failure line
    fails the gate.
    """
    failures: list[str] = []
    notes: list[str] = []
    if fresh.get("scale") != baseline.get("scale"):
        notes.append(
            f"{name}: scale mismatch (fresh {fresh.get('scale')!r} vs "
            f"baseline {baseline.get('scale')!r}) — skipping comparison"
        )
        return failures, notes
    fresh_leaves = numeric_leaves(fresh)
    baseline_leaves = numeric_leaves(baseline)
    compared = 0
    for path, base_value in sorted(baseline_leaves.items()):
        kind = metric_kind(path)
        if kind is None:
            continue
        if path not in fresh_leaves:
            notes.append(f"{name}: {path} missing from fresh record")
            continue
        value = fresh_leaves[path]
        compared += 1
        if kind == "throughput":
            floor = base_value * (1.0 - max_slowdown)
            if value < floor:
                failures.append(
                    f"{name}: {path} regressed: {value:.2f} < floor "
                    f"{floor:.2f} (baseline {base_value:.2f}, "
                    f"-{max_slowdown:.0%} allowed)"
                )
        elif kind == "rss" and base_value > 0:
            ceiling = base_value * (1.0 + max_rss_growth)
            if value > ceiling:
                failures.append(
                    f"{name}: {path} grew: {value:.0f} kB > ceiling "
                    f"{ceiling:.0f} kB (baseline {base_value:.0f} kB, "
                    f"+{max_rss_growth:.0%} allowed)"
                )
    notes.append(f"{name}: {compared} gated metrics compared, scale "
                 f"{fresh.get('scale')!r}")
    return failures, notes


def check(
    fresh_dir: Path,
    baselines_dir: Path,
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
    max_rss_growth: float = DEFAULT_MAX_RSS_GROWTH,
    update: bool = False,
    repo_root: Path | None = None,
) -> int:
    """Run the gate; returns the process exit code."""
    if repo_root is None:
        repo_root = REPO_ROOT
    fresh_paths = sorted(fresh_dir.glob("BENCH_*.json"))
    if not fresh_paths:
        print(f"FAIL: no fresh BENCH_*.json records under {fresh_dir}")
        return 1
    if update:
        baselines_dir.mkdir(parents=True, exist_ok=True)
        for path in fresh_paths:
            load_record(path)  # refuse to enshrine a malformed record
            shutil.copy(path, baselines_dir / path.name)
            print(f"baseline refreshed: {baselines_dir / path.name}")
        return 0
    failures: list[str] = []
    for path in fresh_paths:
        fresh = load_record(path)
        baseline_path = baselines_dir / path.name
        if not baseline_path.exists():
            # Warn-and-pass is only for genuinely new benchmarks.  A repo-
            # root trajectory record that *differs* from the fresh one was
            # committed by an earlier PR (emit_perf writes the root copy
            # and the fresh copy byte-identically in the same run), so a
            # missing baseline there is a silent gate bypass, not a new
            # benchmark — fail hard.
            root_copy = repo_root / path.name
            if root_copy.exists() and root_copy.read_text() != path.read_text():
                failures.append(
                    f"{path.name}: committed trajectory record "
                    f"{root_copy} exists but {baselines_dir} has no "
                    f"baseline — the gate would silently pass; commit a "
                    f"baseline (check_perf.py --update)"
                )
                continue
            print(
                f"WARN: {path.name} has no committed baseline under "
                f"{baselines_dir} — passing; commit one to arm the gate"
            )
            continue
        baseline = load_record(baseline_path)
        record_failures, notes = compare_record(
            path.name, fresh, baseline, max_slowdown, max_rss_growth
        )
        for note in notes:
            print(note)
        failures.extend(record_failures)
    if failures:
        for line in failures:
            print(f"FAIL: {line}")
        return 1
    print("perf gate: OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", type=Path, default=RESULTS_DIR,
        help="directory holding the freshly emitted BENCH_*.json records",
    )
    parser.add_argument(
        "--baselines", type=Path, default=BASELINES_DIR,
        help="directory holding the committed baseline records",
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=DEFAULT_MAX_SLOWDOWN,
        help="allowed relative rounds/sec drop (default 0.25)",
    )
    parser.add_argument(
        "--max-rss-growth", type=float, default=DEFAULT_MAX_RSS_GROWTH,
        help="allowed relative peak-RSS growth (default 0.20)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="copy the fresh records over the baselines instead of gating",
    )
    parser.add_argument(
        "--repo-root", type=Path, default=REPO_ROOT,
        help="repo root holding the committed BENCH_*.json trajectory "
        "copies (used to detect a missing-baseline gate bypass)",
    )
    args = parser.parse_args(argv)
    try:
        return check(
            args.fresh,
            args.baselines,
            max_slowdown=args.max_slowdown,
            max_rss_growth=args.max_rss_growth,
            update=args.update,
            repo_root=args.repo_root,
        )
    except MalformedRecord as exc:
        print(f"FAIL: {exc}")
        return 1


if __name__ == "__main__":
    sys.exit(main())
