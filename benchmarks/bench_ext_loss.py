"""Extension E-ext2: rank error under message loss (Section 6 future work).

Sweeps the per-transmission loss probability and reports, per algorithm,
how often the answer was still exact, how far off it was in rank and value,
and how often the protocol state broke down entirely (requiring a re-sync).
"""

from __future__ import annotations

from repro.experiments.config import default_algorithms

from benchmarks.common import archive, bench_scale, run_once
from repro.extensions.loss import run_loss_experiment

LOSS_RATES = (0.0, 0.01, 0.05, 0.1, 0.2)


def compute():
    scale = bench_scale()
    algorithms = {
        name: factory
        for name, factory in default_algorithms().items()
        if name in ("TAG", "POS", "HBC", "IQ")
    }
    return run_loss_experiment(
        algorithms,
        loss_probabilities=LOSS_RATES,
        num_nodes=max(50, round(500 * scale)),
        num_rounds=max(25, round(250 * scale)),
    )


def test_ext_loss_rank_error(benchmark):
    result = run_once(benchmark, compute)

    lines = [
        f"{'algorithm':10s} {'loss':>5s} {'exact':>7s} {'rank-err':>9s} "
        f"{'value-err':>10s} {'failures':>9s}"
    ]
    algorithms = sorted({p.algorithm for p in result.points})
    for name in algorithms:
        for point in result.series(name):
            lines.append(
                f"{name:10s} {point.loss_probability:5.2f} "
                f"{point.exact_fraction:7.2f} {point.mean_rank_error:9.2f} "
                f"{point.mean_value_error:10.2f} {point.failure_rate:9.2f}"
            )
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    archive("ext_loss", text)

    for name in algorithms:
        series = result.series(name)
        # Lossless operation is exact; errors grow with the loss rate.
        assert series[0].exact_fraction == 1.0
        assert series[0].mean_rank_error == 0.0
        assert series[-1].exact_fraction < 1.0
        assert series[-1].mean_rank_error >= series[0].mean_rank_error
