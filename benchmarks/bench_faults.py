"""Fault injection and recovery: the loss x ARQ-retry matrix.

Sweeps link-loss rates against per-hop ARQ retry budgets over the full
algorithm lineup (exact + sketch) and archives the survival/accuracy table:
exact-answer fraction, mean rank error, re-initialization counts, delivery
coverage and hotspot energy.  The headline claim checked here is that a
small retry budget buys back most of the accuracy that loss destroys — at a
measured, bounded energy premium.
"""

from __future__ import annotations

from benchmarks.common import archive, bench_scale, run_once
from repro.experiments.report import format_fault_table
from repro.faults import fault_lineup, run_fault_experiment

LOSS_RATES = (0.0, 0.05, 0.1)
RETRY_BUDGETS = (0, 2)


def compute():
    scale = bench_scale()
    return run_fault_experiment(
        fault_lineup(),
        loss_rates=LOSS_RATES,
        retry_budgets=RETRY_BUDGETS,
        num_nodes=max(50, round(500 * scale)),
        num_rounds=max(25, round(250 * scale)),
    )


def test_faults_arq_matrix(benchmark):
    result = run_once(benchmark, compute)

    text = format_fault_table(result, title="fault injection: loss x ARQ") + "\n"
    print("\n" + text)
    archive("faults", text)

    algorithms = sorted({p.algorithm for p in result.points})
    exact_algorithms = [a for a in algorithms if not a.startswith("SK")]
    for name in algorithms:
        lossless = result.cell(name, 0.0, RETRY_BUDGETS[0])
        # Without faults nothing is lost, retried or re-initialized.
        assert lossless.lost_transmissions == 0
        assert lossless.reinit_count == 0
        assert lossless.failure_rate == 0.0
    for name in exact_algorithms:
        assert result.cell(name, 0.0, RETRY_BUDGETS[0]).exact_fraction == 1.0
        # Loss without ARQ hurts; a 2-retry budget strictly buys accuracy
        # back at 5% loss (the issue's headline acceptance criterion).
        bare = result.cell(name, 0.05, 0)
        arq = result.cell(name, 0.05, 2)
        assert bare.exact_fraction < 1.0
        assert arq.exact_fraction > bare.exact_fraction
        # The retries actually happened and were charged.
        assert arq.retransmissions > 0
        assert arq.hotspot_energy_mj > 0.0
