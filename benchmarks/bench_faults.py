"""Fault injection and recovery: the loss x ARQ-retry matrix.

Sweeps link-loss rates against per-hop ARQ retry budgets over the full
algorithm lineup (exact + sketch) and archives the survival/accuracy table:
exact-answer fraction, mean rank error, re-initialization counts, delivery
coverage and hotspot energy.  The headline claim checked here is that a
small retry budget buys back most of the accuracy that loss destroys — at a
measured, bounded energy premium.

``test_faulty_core_throughput`` additionally times the faulty convergecast
itself — vectorized core vs the object reference, per loss x retry cell —
after asserting the two cores produce bit-identical ledgers, and emits the
machine-readable ``BENCH_faults.json`` record that ``check_perf.py`` gates
CI on.
"""

from __future__ import annotations

import gc
import time

import numpy as np

from benchmarks.bench_engine_core import (
    REPEATS,
    CountPayload,
    random_recursive_tree,
)
from benchmarks.common import archive, bench_scale, emit_perf, peak_rss_kb, run_once
from repro.experiments.config import default_algorithms
from repro.experiments.report import format_fault_table
from repro.faults import (
    ArqPolicy,
    FaultDriver,
    FaultPlan,
    FaultyTreeNetwork,
    fault_lineup,
    run_fault_experiment,
)
from repro.datasets.synthetic import SyntheticWorkload
from repro.faults.plan import IndependentLoss, ScheduledChurn
from repro.network.routing import build_routing_tree
from repro.network.topology import connected_random_graph
from repro.radio.energy import EnergyModel
from repro.radio.ledger import EnergyLedger
from repro.types import QuerySpec

LOSS_RATES = (0.0, 0.05, 0.1)
RETRY_BUDGETS = (0, 2)

#: Node count of the throughput headline cell (matches the engine bench).
THROUGHPUT_SIZE = 3_000
#: Object-core timed rounds per cell at scale 1; the vector core times 5x.
THROUGHPUT_BASE_ROUNDS = 40
#: Node count of the cheap per-cell bit-equality precondition.
EQUIVALENCE_SIZE = 300
RADIO_RANGE = 35.0


def faulty_net(tree, core: str, loss_rate: float, retries: int, seed: int):
    ledger = EnergyLedger(
        num_vertices=tree.num_vertices,
        root=tree.root,
        model=EnergyModel(),
        radio_range=RADIO_RANGE,
    )
    plan = FaultPlan(
        loss=IndependentLoss(loss_rate), rng=np.random.default_rng(seed)
    )
    return FaultyTreeNetwork(
        tree, ledger, plan=plan, arq=ArqPolicy(max_retries=retries), core=core
    )


def time_faulty_rounds(net, contributions, rounds: int) -> float:
    """Best-of-``REPEATS`` faulty convergecast rounds/sec."""
    round_index = 0
    net.begin_faults_round(round_index)  # warmup round
    net.convergecast(contributions)
    best = 0.0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(REPEATS):
            start = time.perf_counter()
            for _ in range(rounds):
                round_index += 1
                net.begin_faults_round(round_index)
                net.convergecast(contributions)
            elapsed = time.perf_counter() - start
            best = max(best, rounds / elapsed)
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def assert_cores_bit_identical(loss_rate: float, retries: int) -> None:
    """Both cores must produce bit-identical ledgers before we time them."""
    tree = random_recursive_tree(EQUIVALENCE_SIZE, seed=31)
    contributions = {v: CountPayload(1) for v in tree.sensor_nodes}
    ledgers = {}
    for core in ("object", "vector"):
        net = faulty_net(tree, core, loss_rate, retries, seed=90125)
        for r in range(6):
            net.begin_faults_round(r)
            net.convergecast(contributions)
        ledgers[core] = net.ledger
    a, b = ledgers["object"], ledgers["vector"]
    assert np.array_equal(a.energy, b.energy)
    assert np.array_equal(a.bits_sent, b.bits_sent)
    assert np.array_equal(a.messages_received, b.messages_received)


# -- root fail-over throughput (gated, part of BENCH_faults.json) ------------

#: Deployment size of the fail-over timing cell (full driver, not raw net).
FAILOVER_SIZE = 120
#: The sink dies this round of every timed run — always inside the window.
FAILOVER_KILL_ROUND = 3
#: Driver rounds per timed fail-over run at scale 1.
FAILOVER_BASE_ROUNDS = 20


def build_failover_driver(core: str) -> FaultDriver:
    rng = np.random.default_rng(31)
    graph = connected_random_graph(FAILOVER_SIZE, RADIO_RANGE, rng)
    tree = build_routing_tree(graph, root=0)
    workload = SyntheticWorkload(graph.positions, rng)
    plan = FaultPlan(
        loss=IndependentLoss(0.05),
        churn=ScheduledChurn({FAILOVER_KILL_ROUND: (tree.root,)}),
        rng=np.random.default_rng(77),
    )
    return FaultDriver(
        default_algorithms()["POS"],
        QuerySpec(r_min=workload.r_min, r_max=workload.r_max),
        tree,
        workload,
        plan,
        ArqPolicy(max_retries=2),
        graph=graph,
        repair=True,
        radio_range=RADIO_RANGE,
        failover_rng=np.random.default_rng(19),
        core=core,
    )


def time_failover_runs(core: str, rounds: int) -> float:
    """Best-of-``REPEATS`` full driver rounds/sec across a root kill.

    Each repeat runs a fresh driver end to end (the fail-over mutates the
    tree, so a run cannot be re-timed in place); the sink dies at
    ``FAILOVER_KILL_ROUND``, so every timed window pays for one election,
    hand-over flood and O(n) re-root on top of the ordinary faulty rounds.
    """
    best = 0.0
    for _ in range(REPEATS):
        driver = build_failover_driver(core)
        start = time.perf_counter()
        driver.run(rounds)
        elapsed = time.perf_counter() - start
        assert driver.failover.count == 1, "timed run never failed over"
        best = max(best, rounds / elapsed)
    return best


def compute_faulty_throughput() -> dict:
    scale = bench_scale()
    rounds = max(4, round(THROUGHPUT_BASE_ROUNDS * scale))
    tree = random_recursive_tree(THROUGHPUT_SIZE, seed=31)
    contributions = {v: CountPayload(1) for v in tree.sensor_nodes}
    cells = {}
    for loss_rate in LOSS_RATES:
        for retries in RETRY_BUDGETS:
            assert_cores_bit_identical(loss_rate, retries)
            object_rps = time_faulty_rounds(
                faulty_net(tree, "object", loss_rate, retries, seed=90125),
                contributions,
                rounds,
            )
            vector_rps = time_faulty_rounds(
                faulty_net(tree, "vector", loss_rate, retries, seed=90125),
                contributions,
                # The vector core times more rounds in the same wall-clock
                # budget, stabilizing the measurement (engine bench idiom).
                rounds * 5,
            )
            cells[f"loss{loss_rate:g}_retry{retries}"] = {
                "loss_rate": loss_rate,
                "retry_budget": retries,
                "object_faulty_rounds_per_sec": object_rps,
                "vector_faulty_rounds_per_sec": vector_rps,
                "speedup": vector_rps / object_rps,
            }
    failover_rounds = max(8, round(FAILOVER_BASE_ROUNDS * scale))
    failover = {
        "num_vertices": FAILOVER_SIZE,
        "timed_rounds": failover_rounds,
        "kill_round": FAILOVER_KILL_ROUND,
        "object_failover_rounds_per_sec": time_failover_runs(
            "object", failover_rounds
        ),
        "vector_failover_rounds_per_sec": time_failover_runs(
            "vector", failover_rounds
        ),
    }
    return {
        "num_vertices": THROUGHPUT_SIZE,
        "timed_rounds": rounds,
        "cells": cells,
        # The acceptance headline is the *worst* cell: the vectorized
        # faulty path must beat the object core everywhere, not on average.
        "headline_speedup": min(c["speedup"] for c in cells.values()),
        # Full-driver rounds/sec across a mid-run root kill (both cores):
        # the *_rounds_per_sec leaves are gated by check_perf.py, so a
        # regression in the election/hand-over/re-root path fails CI.
        "failover": failover,
        "peak_rss_kb": peak_rss_kb(),
    }


def format_throughput_table(data: dict) -> str:
    lines = [
        "faulty path: convergecast rounds/sec under loss x ARQ, "
        f"object vs vectorized ({data['num_vertices']} vertices)",
        f"{'loss':>6s} {'retries':>8s} {'object r/s':>11s} "
        f"{'vector r/s':>11s} {'speedup':>8s}",
    ]
    for cell in data["cells"].values():
        lines.append(
            f"{cell['loss_rate']:6.2f} {cell['retry_budget']:8d} "
            f"{cell['object_faulty_rounds_per_sec']:11.1f} "
            f"{cell['vector_faulty_rounds_per_sec']:11.1f} "
            f"{cell['speedup']:8.1f}"
        )
    failover = data["failover"]
    lines.append(
        f"fail-over driver ({failover['num_vertices']} vertices, sink "
        f"killed @{failover['kill_round']}): "
        f"object {failover['object_failover_rounds_per_sec']:.1f} r/s, "
        f"vector {failover['vector_failover_rounds_per_sec']:.1f} r/s"
    )
    return "\n".join(lines) + "\n"


def test_faulty_core_throughput(benchmark):
    data = run_once(benchmark, compute_faulty_throughput)
    text = format_throughput_table(data)
    print("\n" + text)
    archive("faults_throughput", text)
    emit_perf("faults", data)

    # Acceptance: the committed record must show >= 5x in every cell at
    # 3k vertices; the in-test floor is 3x so a noisy CI runner cannot
    # flake a genuinely fast core (engine bench convention).
    assert data["headline_speedup"] >= 3.0


# Pinned acceptance cell for the ETX-vs-nearest repair comparison.  The
# cell is deliberately *not* scaled by REPRO_BENCH_SCALE: the claim under
# test is a seeded A/B on one deployment, not a sweep.
ETX_CELL = dict(
    loss_rates=(0.08,),
    retry_budgets=(2,),
    transient_rate=0.05,
    num_nodes=60,
    num_rounds=60,
)


def compute():
    scale = bench_scale()
    return run_fault_experiment(
        fault_lineup(),
        loss_rates=LOSS_RATES,
        retry_budgets=RETRY_BUDGETS,
        num_nodes=max(50, round(500 * scale)),
        num_rounds=max(25, round(250 * scale)),
    )


def test_faults_arq_matrix(benchmark):
    result = run_once(benchmark, compute)

    text = format_fault_table(result, title="fault injection: loss x ARQ") + "\n"
    print("\n" + text)
    archive("faults", text)

    algorithms = sorted({p.algorithm for p in result.points})
    exact_algorithms = [a for a in algorithms if not a.startswith("SK")]
    for name in algorithms:
        lossless = result.cell(name, 0.0, RETRY_BUDGETS[0])
        # Without faults nothing is lost, retried or re-initialized.
        assert lossless.lost_transmissions == 0
        assert lossless.reinit_count == 0
        assert lossless.failure_rate == 0.0
    for name in exact_algorithms:
        assert result.cell(name, 0.0, RETRY_BUDGETS[0]).exact_fraction == 1.0
        # Loss without ARQ hurts; a 2-retry budget strictly buys accuracy
        # back at 5% loss (the issue's headline acceptance criterion).
        bare = result.cell(name, 0.05, 0)
        arq = result.cell(name, 0.05, 2)
        assert bare.exact_fraction < 1.0
        assert arq.exact_fraction > bare.exact_fraction
        # The retries actually happened and were charged.
        assert arq.retransmissions > 0
        assert arq.hotspot_energy_mj > 0.0


def compute_repair_metric_comparison():
    """Run the pinned churn+loss cell once per orphan-adoption metric."""
    cells = {}
    for metric in ("etx", "nearest"):
        result = run_fault_experiment(
            {"POS": default_algorithms()["POS"]},
            repair_metric=metric,
            **ETX_CELL,
        )
        (cells[metric],) = result.points
    return cells


def test_etx_repair_vs_nearest_neighbour(benchmark):
    """ETX orphan adoption vs PR 3's nearest-neighbour ranking.

    At equal delivered-round coverage, ETX-ranked adoption must match
    nearest-neighbour on retransmissions (within 5%) while spending no
    more repair energy and no more hotspot energy — and it may not give
    back any exactness to get there.
    """
    cells = run_once(benchmark, compute_repair_metric_comparison)
    etx, nearest = cells["etx"], cells["nearest"]

    header = (
        f"{'metric':>8s} {'exact':>7s} {'retx':>6s} {'repair mJ':>10s} "
        f"{'hotspot mJ':>11s} {'delivered':>10s} {'reattach':>9s}"
    )
    rows = [
        f"{name:>8s} {p.exact_fraction:7.3f} {p.retransmissions:6d} "
        f"{p.repair_energy_mj:10.3f} {p.hotspot_energy_mj:11.4f} "
        f"{p.delivered_fraction:10.3f} {p.reattach_count:9d}"
        for name, p in cells.items()
    ]
    text = "\n".join(
        ["repair metric A/B: ETX vs nearest-neighbour adoption", header]
        + rows
    ) + "\n"
    print("\n" + text)
    archive("faults_repair_metric", text)

    # Same delivered-round coverage: the comparison is apples to apples.
    assert abs(etx.delivered_fraction - nearest.delivered_fraction) < 0.01
    # No exactness given back; loss-aware paths actually answer better.
    assert etx.exact_fraction >= nearest.exact_fraction
    # Matching on retransmissions (ETX routes around lossy links, but the
    # extra exact rounds carry real traffic, so "matching" is within 5%).
    assert etx.retransmissions <= nearest.retransmissions * 1.05
    # Strictly cheaper repair: fewer, better-aimed adoptions.
    assert etx.repair_energy_mj <= nearest.repair_energy_mj
    assert etx.hotspot_energy_mj <= nearest.hotspot_energy_mj


# Pinned acceptance cell for the heal-patience A/B: the ROADMAP's old
# crash reproducer (seed 42, sustained transient churn).  Like ETX_CELL,
# deliberately not scaled — the claim is a seeded A/B on one deployment.
HEAL_CELL = dict(
    seed=42,
    loss_rates=(0.08,),
    retry_budgets=(2,),
    transient_rate=0.05,
    num_nodes=60,
    num_rounds=60,
)


def compute_heal_patience_comparison():
    """The parked-orphan queue vs the legacy same-round re-init cliff."""
    cells = {}
    for patience in (1, 3):
        result = run_fault_experiment(
            {"POS": default_algorithms()["POS"]},
            heal_patience=patience,
            **HEAL_CELL,
        )
        (cells[patience],) = result.points
    return cells


def test_partition_healing_vs_reinit_cliff(benchmark):
    """Multi-round partition healing vs the same-round re-init fallback.

    With ``heal_patience=3`` parked orphans must actually re-attach in
    later rounds (healed partitions > 0), re-initializations must drop,
    and the combined repair + re-init energy must come in *below* the
    legacy cliff — patience converts re-init broadcasts into a few
    duty-cycled listen windows and wins on both energy and exactness.
    """
    cells = run_once(benchmark, compute_heal_patience_comparison)
    cliff, patient = cells[1], cells[3]

    header = (
        f"{'patience':>8s} {'exact':>7s} {'reinit':>7s} {'healed':>7s} "
        f"{'parked':>7s} {'degr':>5s} {'repair mJ':>10s} {'reinit mJ':>10s}"
    )
    rows = [
        f"{patience:8d} {p.exact_fraction:7.3f} {p.reinit_count:7d} "
        f"{p.healed_partitions:7d} {p.parked_orphan_rounds:7d} "
        f"{p.degraded_rounds:5d} {p.repair_energy_mj:10.3f} "
        f"{p.reinit_energy_mj:10.3f}"
        for patience, p in cells.items()
    ]
    text = "\n".join(
        ["partition healing A/B: heal_patience 3 vs the re-init cliff",
         header] + rows
    ) + "\n"
    print("\n" + text)
    archive("faults_heal_patience", text)

    # Both runs survive the old last-participant crash end to end.
    assert cliff.rounds == patient.rounds == HEAL_CELL["num_rounds"]
    # The legacy cliff never parks, never heals.
    assert cliff.healed_partitions == 0 and cliff.parked_orphan_rounds == 0
    # Patience actually heals partitions in later rounds...
    assert patient.healed_partitions > 0
    # ...which converts re-initializations into waiting...
    assert patient.reinit_count < cliff.reinit_count
    # ...at lower combined repair + re-init energy than the cliff...
    assert (
        patient.repair_energy_mj + patient.reinit_energy_mj
        < cliff.repair_energy_mj + cliff.reinit_energy_mj
    )
    # ...without giving back exactness.
    assert patient.exact_fraction >= cliff.exact_fraction


# Pinned acceptance cell for the root fail-over A/B: same deployment and
# fault stream with and without a mid-run sink kill.  Like ETX_CELL and
# HEAL_CELL, deliberately not scaled — the claim is a seeded A/B.
FAILOVER_CELL = dict(
    loss_rates=(0.08,),
    # Budget 3 keeps permanent frame loss out of the cell (p ~ 4e-5 per
    # chain), so the A/B isolates the fail-over cost instead of the
    # pre-existing lost-report-until-reinit semantics.
    retry_budgets=(3,),
    num_nodes=60,
    num_rounds=60,
)
#: The sink dies a third of the way into the pinned run.
FAILOVER_CELL_KILL = 20


def compute_failover_comparison():
    """The pinned cell once with a healthy sink, once with a root kill."""
    cells = {}
    for name, kill in (("healthy", None), ("killed", FAILOVER_CELL_KILL)):
        result = run_fault_experiment(
            {"POS": default_algorithms()["POS"]},
            root_kill=kill,
            **FAILOVER_CELL,
        )
        (cells[name],) = result.points
    return cells


def test_root_failover_cell(benchmark):
    """Losing the sink costs one hand-over, not the query.

    With the root killed a third of the way in, the run must execute
    exactly one fail-over, charge a strictly positive (but bounded)
    hand-over energy, keep serving to the end, and land within ten
    exactness points of the healthy run — the fail-over path converts
    what used to be a hard stop into a one-time recovery cost.
    """
    cells = run_once(benchmark, compute_failover_comparison)
    healthy, killed = cells["healthy"], cells["killed"]

    header = (
        f"{'cell':>8s} {'exact':>7s} {'fovr':>5s} {'hoE mJ':>8s} "
        f"{'reinit':>7s} {'degr':>5s} {'alive':>6s}"
    )
    rows = [
        f"{name:>8s} {p.exact_fraction:7.3f} {p.failovers:5d} "
        f"{p.failover_energy_mj:8.4f} {p.reinit_count:7d} "
        f"{p.degraded_rounds:5d} {p.survivors:6d}"
        for name, p in cells.items()
    ]
    text = "\n".join(
        ["root fail-over A/B: healthy sink vs mid-run root kill", header]
        + rows
    ) + "\n"
    print("\n" + text)
    archive("faults_failover", text)

    # Both runs go the distance — a dead sink no longer ends the study.
    assert healthy.rounds == killed.rounds == FAILOVER_CELL["num_rounds"]
    # Exactly one election + hand-over, charged.
    assert healthy.failovers == 0 and healthy.failover_energy_mj == 0.0
    assert killed.failovers == 1
    assert killed.failover_energy_mj > 0.0
    # The hand-over is a blip, not a second query: the election beacons
    # plus one network-wide state flood stay under a couple millijoules
    # total (the healthy cell's whole-network round traffic is of the
    # same order).
    assert killed.failover_energy_mj < 2.0
    # The deposed sink leaves the battery population; nobody else died.
    assert killed.survivors == healthy.survivors - 1
    # Accuracy survives the hand-over.
    assert killed.exact_fraction >= healthy.exact_fraction - 0.10
