"""Fault injection and recovery: the loss x ARQ-retry matrix.

Sweeps link-loss rates against per-hop ARQ retry budgets over the full
algorithm lineup (exact + sketch) and archives the survival/accuracy table:
exact-answer fraction, mean rank error, re-initialization counts, delivery
coverage and hotspot energy.  The headline claim checked here is that a
small retry budget buys back most of the accuracy that loss destroys — at a
measured, bounded energy premium.

``test_faulty_core_throughput`` additionally times the faulty convergecast
itself — vectorized core vs the object reference, per loss x retry cell —
after asserting the two cores produce bit-identical ledgers, and emits the
machine-readable ``BENCH_faults.json`` record that ``check_perf.py`` gates
CI on.
"""

from __future__ import annotations

import gc
import time

import numpy as np

from benchmarks.bench_engine_core import (
    REPEATS,
    CountPayload,
    random_recursive_tree,
)
from benchmarks.common import archive, bench_scale, emit_perf, peak_rss_kb, run_once
from repro.experiments.config import default_algorithms
from repro.experiments.report import format_fault_table
from repro.faults import ArqPolicy, FaultPlan, FaultyTreeNetwork, fault_lineup, run_fault_experiment
from repro.faults.plan import IndependentLoss
from repro.radio.energy import EnergyModel
from repro.radio.ledger import EnergyLedger

LOSS_RATES = (0.0, 0.05, 0.1)
RETRY_BUDGETS = (0, 2)

#: Node count of the throughput headline cell (matches the engine bench).
THROUGHPUT_SIZE = 3_000
#: Object-core timed rounds per cell at scale 1; the vector core times 5x.
THROUGHPUT_BASE_ROUNDS = 40
#: Node count of the cheap per-cell bit-equality precondition.
EQUIVALENCE_SIZE = 300
RADIO_RANGE = 35.0


def faulty_net(tree, core: str, loss_rate: float, retries: int, seed: int):
    ledger = EnergyLedger(
        num_vertices=tree.num_vertices,
        root=tree.root,
        model=EnergyModel(),
        radio_range=RADIO_RANGE,
    )
    plan = FaultPlan(
        loss=IndependentLoss(loss_rate), rng=np.random.default_rng(seed)
    )
    return FaultyTreeNetwork(
        tree, ledger, plan=plan, arq=ArqPolicy(max_retries=retries), core=core
    )


def time_faulty_rounds(net, contributions, rounds: int) -> float:
    """Best-of-``REPEATS`` faulty convergecast rounds/sec."""
    round_index = 0
    net.begin_faults_round(round_index)  # warmup round
    net.convergecast(contributions)
    best = 0.0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(REPEATS):
            start = time.perf_counter()
            for _ in range(rounds):
                round_index += 1
                net.begin_faults_round(round_index)
                net.convergecast(contributions)
            elapsed = time.perf_counter() - start
            best = max(best, rounds / elapsed)
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def assert_cores_bit_identical(loss_rate: float, retries: int) -> None:
    """Both cores must produce bit-identical ledgers before we time them."""
    tree = random_recursive_tree(EQUIVALENCE_SIZE, seed=31)
    contributions = {v: CountPayload(1) for v in tree.sensor_nodes}
    ledgers = {}
    for core in ("object", "vector"):
        net = faulty_net(tree, core, loss_rate, retries, seed=90125)
        for r in range(6):
            net.begin_faults_round(r)
            net.convergecast(contributions)
        ledgers[core] = net.ledger
    a, b = ledgers["object"], ledgers["vector"]
    assert np.array_equal(a.energy, b.energy)
    assert np.array_equal(a.bits_sent, b.bits_sent)
    assert np.array_equal(a.messages_received, b.messages_received)


def compute_faulty_throughput() -> dict:
    scale = bench_scale()
    rounds = max(4, round(THROUGHPUT_BASE_ROUNDS * scale))
    tree = random_recursive_tree(THROUGHPUT_SIZE, seed=31)
    contributions = {v: CountPayload(1) for v in tree.sensor_nodes}
    cells = {}
    for loss_rate in LOSS_RATES:
        for retries in RETRY_BUDGETS:
            assert_cores_bit_identical(loss_rate, retries)
            object_rps = time_faulty_rounds(
                faulty_net(tree, "object", loss_rate, retries, seed=90125),
                contributions,
                rounds,
            )
            vector_rps = time_faulty_rounds(
                faulty_net(tree, "vector", loss_rate, retries, seed=90125),
                contributions,
                # The vector core times more rounds in the same wall-clock
                # budget, stabilizing the measurement (engine bench idiom).
                rounds * 5,
            )
            cells[f"loss{loss_rate:g}_retry{retries}"] = {
                "loss_rate": loss_rate,
                "retry_budget": retries,
                "object_faulty_rounds_per_sec": object_rps,
                "vector_faulty_rounds_per_sec": vector_rps,
                "speedup": vector_rps / object_rps,
            }
    return {
        "num_vertices": THROUGHPUT_SIZE,
        "timed_rounds": rounds,
        "cells": cells,
        # The acceptance headline is the *worst* cell: the vectorized
        # faulty path must beat the object core everywhere, not on average.
        "headline_speedup": min(c["speedup"] for c in cells.values()),
        "peak_rss_kb": peak_rss_kb(),
    }


def format_throughput_table(data: dict) -> str:
    lines = [
        "faulty path: convergecast rounds/sec under loss x ARQ, "
        f"object vs vectorized ({data['num_vertices']} vertices)",
        f"{'loss':>6s} {'retries':>8s} {'object r/s':>11s} "
        f"{'vector r/s':>11s} {'speedup':>8s}",
    ]
    for cell in data["cells"].values():
        lines.append(
            f"{cell['loss_rate']:6.2f} {cell['retry_budget']:8d} "
            f"{cell['object_faulty_rounds_per_sec']:11.1f} "
            f"{cell['vector_faulty_rounds_per_sec']:11.1f} "
            f"{cell['speedup']:8.1f}"
        )
    return "\n".join(lines) + "\n"


def test_faulty_core_throughput(benchmark):
    data = run_once(benchmark, compute_faulty_throughput)
    text = format_throughput_table(data)
    print("\n" + text)
    archive("faults_throughput", text)
    emit_perf("faults", data)

    # Acceptance: the committed record must show >= 5x in every cell at
    # 3k vertices; the in-test floor is 3x so a noisy CI runner cannot
    # flake a genuinely fast core (engine bench convention).
    assert data["headline_speedup"] >= 3.0


# Pinned acceptance cell for the ETX-vs-nearest repair comparison.  The
# cell is deliberately *not* scaled by REPRO_BENCH_SCALE: the claim under
# test is a seeded A/B on one deployment, not a sweep.
ETX_CELL = dict(
    loss_rates=(0.08,),
    retry_budgets=(2,),
    transient_rate=0.05,
    num_nodes=60,
    num_rounds=60,
)


def compute():
    scale = bench_scale()
    return run_fault_experiment(
        fault_lineup(),
        loss_rates=LOSS_RATES,
        retry_budgets=RETRY_BUDGETS,
        num_nodes=max(50, round(500 * scale)),
        num_rounds=max(25, round(250 * scale)),
    )


def test_faults_arq_matrix(benchmark):
    result = run_once(benchmark, compute)

    text = format_fault_table(result, title="fault injection: loss x ARQ") + "\n"
    print("\n" + text)
    archive("faults", text)

    algorithms = sorted({p.algorithm for p in result.points})
    exact_algorithms = [a for a in algorithms if not a.startswith("SK")]
    for name in algorithms:
        lossless = result.cell(name, 0.0, RETRY_BUDGETS[0])
        # Without faults nothing is lost, retried or re-initialized.
        assert lossless.lost_transmissions == 0
        assert lossless.reinit_count == 0
        assert lossless.failure_rate == 0.0
    for name in exact_algorithms:
        assert result.cell(name, 0.0, RETRY_BUDGETS[0]).exact_fraction == 1.0
        # Loss without ARQ hurts; a 2-retry budget strictly buys accuracy
        # back at 5% loss (the issue's headline acceptance criterion).
        bare = result.cell(name, 0.05, 0)
        arq = result.cell(name, 0.05, 2)
        assert bare.exact_fraction < 1.0
        assert arq.exact_fraction > bare.exact_fraction
        # The retries actually happened and were charged.
        assert arq.retransmissions > 0
        assert arq.hotspot_energy_mj > 0.0


def compute_repair_metric_comparison():
    """Run the pinned churn+loss cell once per orphan-adoption metric."""
    cells = {}
    for metric in ("etx", "nearest"):
        result = run_fault_experiment(
            {"POS": default_algorithms()["POS"]},
            repair_metric=metric,
            **ETX_CELL,
        )
        (cells[metric],) = result.points
    return cells


def test_etx_repair_vs_nearest_neighbour(benchmark):
    """ETX orphan adoption vs PR 3's nearest-neighbour ranking.

    At equal delivered-round coverage, ETX-ranked adoption must match
    nearest-neighbour on retransmissions (within 5%) while spending no
    more repair energy and no more hotspot energy — and it may not give
    back any exactness to get there.
    """
    cells = run_once(benchmark, compute_repair_metric_comparison)
    etx, nearest = cells["etx"], cells["nearest"]

    header = (
        f"{'metric':>8s} {'exact':>7s} {'retx':>6s} {'repair mJ':>10s} "
        f"{'hotspot mJ':>11s} {'delivered':>10s} {'reattach':>9s}"
    )
    rows = [
        f"{name:>8s} {p.exact_fraction:7.3f} {p.retransmissions:6d} "
        f"{p.repair_energy_mj:10.3f} {p.hotspot_energy_mj:11.4f} "
        f"{p.delivered_fraction:10.3f} {p.reattach_count:9d}"
        for name, p in cells.items()
    ]
    text = "\n".join(
        ["repair metric A/B: ETX vs nearest-neighbour adoption", header]
        + rows
    ) + "\n"
    print("\n" + text)
    archive("faults_repair_metric", text)

    # Same delivered-round coverage: the comparison is apples to apples.
    assert abs(etx.delivered_fraction - nearest.delivered_fraction) < 0.01
    # No exactness given back; loss-aware paths actually answer better.
    assert etx.exact_fraction >= nearest.exact_fraction
    # Matching on retransmissions (ETX routes around lossy links, but the
    # extra exact rounds carry real traffic, so "matching" is within 5%).
    assert etx.retransmissions <= nearest.retransmissions * 1.05
    # Strictly cheaper repair: fewer, better-aimed adoptions.
    assert etx.repair_energy_mj <= nearest.repair_energy_mj
    assert etx.hotspot_energy_mj <= nearest.hotspot_energy_mj


# Pinned acceptance cell for the heal-patience A/B: the ROADMAP's old
# crash reproducer (seed 42, sustained transient churn).  Like ETX_CELL,
# deliberately not scaled — the claim is a seeded A/B on one deployment.
HEAL_CELL = dict(
    seed=42,
    loss_rates=(0.08,),
    retry_budgets=(2,),
    transient_rate=0.05,
    num_nodes=60,
    num_rounds=60,
)


def compute_heal_patience_comparison():
    """The parked-orphan queue vs the legacy same-round re-init cliff."""
    cells = {}
    for patience in (1, 3):
        result = run_fault_experiment(
            {"POS": default_algorithms()["POS"]},
            heal_patience=patience,
            **HEAL_CELL,
        )
        (cells[patience],) = result.points
    return cells


def test_partition_healing_vs_reinit_cliff(benchmark):
    """Multi-round partition healing vs the same-round re-init fallback.

    With ``heal_patience=3`` parked orphans must actually re-attach in
    later rounds (healed partitions > 0), re-initializations must drop,
    and the combined repair + re-init energy must come in *below* the
    legacy cliff — patience converts re-init broadcasts into a few
    duty-cycled listen windows and wins on both energy and exactness.
    """
    cells = run_once(benchmark, compute_heal_patience_comparison)
    cliff, patient = cells[1], cells[3]

    header = (
        f"{'patience':>8s} {'exact':>7s} {'reinit':>7s} {'healed':>7s} "
        f"{'parked':>7s} {'degr':>5s} {'repair mJ':>10s} {'reinit mJ':>10s}"
    )
    rows = [
        f"{patience:8d} {p.exact_fraction:7.3f} {p.reinit_count:7d} "
        f"{p.healed_partitions:7d} {p.parked_orphan_rounds:7d} "
        f"{p.degraded_rounds:5d} {p.repair_energy_mj:10.3f} "
        f"{p.reinit_energy_mj:10.3f}"
        for patience, p in cells.items()
    ]
    text = "\n".join(
        ["partition healing A/B: heal_patience 3 vs the re-init cliff",
         header] + rows
    ) + "\n"
    print("\n" + text)
    archive("faults_heal_patience", text)

    # Both runs survive the old last-participant crash end to end.
    assert cliff.rounds == patient.rounds == HEAL_CELL["num_rounds"]
    # The legacy cliff never parks, never heals.
    assert cliff.healed_partitions == 0 and cliff.parked_orphan_rounds == 0
    # Patience actually heals partitions in later rounds...
    assert patient.healed_partitions > 0
    # ...which converts re-initializations into waiting...
    assert patient.reinit_count < cliff.reinit_count
    # ...at lower combined repair + re-init energy than the cliff...
    assert (
        patient.repair_energy_mj + patient.reinit_energy_mj
        < cliff.repair_energy_mj + cliff.reinit_energy_mj
    )
    # ...without giving back exactness.
    assert patient.exact_fraction >= cliff.exact_fraction
