"""Energy-vs-rank-error frontier: the sketch family against the exact
algorithms.

The exact algorithms (TAG/HBC/IQ) sit at rank error 0; the sketch family
(`repro.sketch` + `core/sketchq.py`) trades a bounded rank error
``eps * |N|`` for energy.  This benchmark sweeps the error budget at a
fixed deployment of at least 300 nodes (where TAG's full collection is
already losing) and verifies the two claims the subsystem makes:

* *accuracy* — the measured per-round rank error never exceeds
  ``eps * |N|``, for every swept ``eps``, for both the one-shot (``SK1``)
  and the validation-gated (``SKQ``) variant (the q-digest guarantee is
  deterministic);
* *energy* — both variants' maximum per-node energy stays strictly below
  TAG's, and the gated variant gets monotonically cheaper as the budget
  loosens (the frontier actually slopes).
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines import TAG
from repro.core import HBC, IQ
from repro.experiments.config import sketch_algorithms
from repro.experiments.runner import run_synthetic_experiment

from benchmarks.common import archive, base_config, bench_scale, run_once

#: Error budgets swept (fraction of |N|).
EPS_VALUES = (0.02, 0.05, 0.1)

#: TAG must be beaten from this deployment size on.
MIN_NODES = 300


def compute():
    config = replace(
        base_config(),
        num_nodes=max(MIN_NODES, round(2000 * bench_scale())),
    )
    lineup = {"TAG": TAG, "HBC": HBC, "IQ": IQ}
    lineup.update(
        sketch_algorithms(EPS_VALUES, kind="qdigest", gated=True, one_shot=True)
    )
    return config, run_synthetic_experiment(config, lineup)


def format_frontier(config, metrics) -> str:
    budgets = {
        f"{prefix}@{eps:g}": eps * config.num_nodes
        for eps in EPS_VALUES
        for prefix in ("SKQ", "SK1")
    }
    lines = [
        (
            f"sketch tradeoff — {config.num_nodes} nodes, "
            f"{config.rounds} rounds x {config.runs} runs — q-digest, "
            f"budget = eps*|N|"
        ),
        f"{'algorithm':10s} {'maxE [mJ]':>10s} {'lifetime':>9s} "
        f"{'rank-err':>9s} {'max-err':>8s} {'budget':>7s}",
    ]
    for name, m in metrics.items():
        budget = budgets.get(name)
        lines.append(
            f"{name:10s} {m.max_energy_mj:10.4f} {m.lifetime_rounds:9.1f} "
            f"{m.mean_rank_error:9.2f} {m.max_rank_error:8d} "
            + (f"{budget:7.1f}" if budget is not None else f"{'exact':>7s}")
        )
    return "\n".join(lines) + "\n"


def test_sketch_tradeoff(benchmark):
    config, metrics = run_once(benchmark, compute)
    text = format_frontier(config, metrics)
    print("\n" + text)
    archive("sketch_tradeoff", text)

    num_nodes = config.num_nodes
    assert num_nodes >= MIN_NODES
    tag_energy = metrics["TAG"].max_energy_mj

    for eps in EPS_VALUES:
        for prefix in ("SKQ", "SK1"):
            m = metrics[f"{prefix}@{eps:g}"]
            # Deterministic q-digest guarantee, measured round by round.
            assert m.max_rank_error <= eps * num_nodes, (prefix, eps)
            # The sketch convergecast must beat TAG's full collection.
            assert m.max_energy_mj < tag_energy, (prefix, eps)
            # Exact algorithms answer exactly; sketches are flagged.
            assert not m.all_exact or m.mean_rank_error == 0.0

    # The frontier slopes: a looser budget must not cost more energy
    # (gated variant — where the budget drives the refresh rate).
    gated = [metrics[f"SKQ@{eps:g}"].max_energy_mj for eps in EPS_VALUES]
    assert gated[-1] < gated[0]
