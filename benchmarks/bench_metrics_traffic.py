"""Transmitted messages and values per round (the metrics deferred to [20]).

The paper reports only energy and lifetime "for the sake of brevity" and
defers the per-round message/value counts to its technical report [20].
This bench regenerates those tables for the default configuration and
checks the structural relationships between the four indicators.
"""

from __future__ import annotations

from repro.experiments.config import default_algorithms
from repro.experiments.runner import run_synthetic_experiment

from benchmarks.common import archive, base_config, run_once


def compute():
    base = base_config()
    return run_synthetic_experiment(base, default_algorithms()), base


def test_traffic_metrics(benchmark):
    metrics, config = run_once(benchmark, compute)

    lines = [
        f"traffic indicators ({config.num_nodes} nodes, tau={config.period}, "
        f"psi={config.noise_percent}%)",
        f"{'algorithm':10s} {'msgs/rnd':>10s} {'vals/rnd':>10s} "
        f"{'refin/rnd':>10s} {'exch/rnd':>9s} {'maxE [mJ]':>11s}",
    ]
    for name, m in metrics.items():
        lines.append(
            f"{name:10s} {m.messages_per_round:10.1f} {m.values_per_round:10.1f} "
            f"{m.refinements_per_round:10.2f} {m.exchanges_per_round:9.2f} "
            f"{m.max_energy_mj:11.4f}"
        )
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    archive("metrics_traffic", text)

    # TAG ships every value up the tree: by far the most raw values.
    values = {name: m.values_per_round for name, m in metrics.items()}
    assert values["TAG"] > 3 * max(
        v for name, v in values.items() if name != "TAG"
    )
    # LCLL validation is pure counter deltas: no raw values outside
    # (rare) slips, and none at all for the hierarchical variant's
    # histogram-only refinements.
    assert values["LCLL-H"] == 0.0
    # IQ trades values (the multiset A) for round-trips: fewer messages
    # than the iterating approaches, more raw values than POS.
    messages = {name: m.messages_per_round for name, m in metrics.items()}
    assert messages["IQ"] < messages["POS"]
    assert messages["IQ"] < messages["LCLL-H"]
    # Energy broadly follows message counts for the filter-based family.
    assert (messages["IQ"] < messages["HBC"]) == (
        metrics["IQ"].max_energy_mj < metrics["HBC"].max_energy_mj
    )
    # Latency ([15]'s dimension): TAG needs exactly one convergecast per
    # round, and IQ's two-convergecast bound keeps it ahead of the
    # iterating refiners.
    exchanges = {name: m.exchanges_per_round for name, m in metrics.items()}
    assert exchanges["TAG"] <= 1.1
    assert exchanges["IQ"] <= 4.0  # validation + <=1 refinement + broadcasts
    assert exchanges["IQ"] < exchanges["LCLL-H"] + 2.0
