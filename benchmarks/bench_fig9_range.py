"""Figure 9: energy and lifetime vs. the radio range ρ.

Paper shapes (Section 5.2.4): the energy of all approaches grows with ρ —
the amplifier term grows quadratically and, more importantly, nodes gain
more children and therefore more receptions; LCLL-H copes comparatively
well at large ρ thanks to its very restricted refinement ranges.
"""

from __future__ import annotations

from repro.experiments.sweeps import RADIO_RANGES, sweep

from benchmarks.common import base_config, report, run_once


def compute():
    # Radio ranges are physical and need no scaling, but the smallest
    # paper value (15 m) requires ~500 nodes for connectivity; drop it
    # when the bench-scaled node count is too small.
    base = base_config()
    ranges = [r for r in RADIO_RANGES if r >= 35.0 or base.num_nodes >= 400]
    return sweep("radio_range", values=ranges, base=base, scale=1.0)


def test_fig9_varying_radio_range(benchmark):
    result = run_once(benchmark, compute)
    report(result, "Figure 9", "synthetic dataset, varying the radio range rho")

    for name in result.series:
        energy = result.energy_series(name)
        assert energy[-1] > energy[0], name

    # Lifetime moves opposite to the hotspot energy.
    for name in result.series:
        lifetime = result.lifetime_series(name)
        assert lifetime[-1] < lifetime[0], name
