"""Where the bits go: per-phase traffic breakdown of every algorithm.

Attributes every on-air bit to its protocol phase (initialization /
validation / refinement / filter / collection) and checks the structural
expectations behind the paper's design arguments: IQ concentrates its
budget in validation (the A multiset) and almost none in refinement, POS
and LCLL spend heavily on refinement exchanges, and the filter broadcasts
are a minor line item for everyone.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import default_algorithms
from repro.datasets.synthetic import SyntheticWorkload
from repro.network.routing import build_routing_tree
from repro.network.topology import connected_random_graph
from repro.sim.runner import SimulationRunner
from repro.types import QuerySpec

from benchmarks.common import archive, bench_scale, run_once

PHASES = ("initialization", "collection", "validation", "refinement", "filter")


def compute():
    scale = bench_scale()
    rng = np.random.default_rng(20140324)
    num_nodes = max(75, round(500 * scale))
    rounds = max(40, round(250 * scale))
    graph = connected_random_graph(num_nodes + 1, 35.0, rng)
    tree = build_routing_tree(graph, root=0)
    workload = SyntheticWorkload(
        graph.positions, rng, period=max(8, round(63 * scale)),
        noise_percent=5.0,
    )
    spec = QuerySpec(r_min=workload.r_min, r_max=workload.r_max)
    runner = SimulationRunner(tree, 35.0, check=True)
    return {
        name: runner.run(factory(spec), workload.values, rounds)
        for name, factory in default_algorithms().items()
    }


def test_phase_breakdown(benchmark):
    results = run_once(benchmark, compute)

    lines = [
        "per-phase share of on-air bits",
        f"{'algorithm':10s} " + "".join(f"{phase:>15s}" for phase in PHASES),
    ]
    shares = {}
    for name, result in results.items():
        total = sum(result.phase_bits.values())
        share = {
            phase: result.phase_bits.get(phase, 0) / total for phase in PHASES
        }
        shares[name] = share
        lines.append(
            f"{name:10s} " + "".join(f"{share[phase]:15.1%}" for phase in PHASES)
        )
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    archive("phase_breakdown", text)

    # TAG is pure collection.
    assert shares["TAG"]["collection"] > 0.95
    # IQ front-loads validation and spends less share on refinement than
    # the iterating refiners.
    assert shares["IQ"]["validation"] > shares["IQ"]["refinement"]
    assert shares["IQ"]["refinement"] < shares["POS"]["refinement"]
    assert shares["IQ"]["refinement"] < shares["LCLL-H"]["refinement"]
    # Filter broadcasts are a minor line item everywhere.
    for name in results:
        assert shares[name]["filter"] < 0.30
    # Every accounted bit belongs to a known phase.
    for name, result in results.items():
        unknown = sum(
            bits for phase, bits in result.phase_bits.items()
            if phase not in PHASES
        )
        assert unknown == 0, (name, result.phase_bits)
