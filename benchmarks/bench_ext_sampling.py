"""Extension E-ext3: probabilistic quantiles via layered sampling (§3.1/[28]).

Sweeps the sampled-layer fraction and reports the rank-error / energy
trade-off: sampling a quarter of the nodes costs a bounded population-rank
error while cutting the hotspot's radio budget substantially.
"""

from __future__ import annotations

from repro.extensions.sampling import run_sampling_experiment

from benchmarks.common import archive, bench_scale, run_once

FRACTIONS = (0.1, 0.25, 0.5, 0.75, 1.0)


def compute():
    scale = bench_scale()
    return run_sampling_experiment(
        fractions=FRACTIONS,
        num_nodes=max(100, round(500 * scale)),
        num_rounds=max(25, round(250 * scale)),
    )


def test_ext_layered_sampling(benchmark):
    result = run_once(benchmark, compute)

    lines = [
        f"layered sampling with {result.algorithm}",
        f"{'fraction':>9s} {'layer':>6s} {'rank-err':>9s} {'max-rank-err':>13s} "
        f"{'value-err':>10s} {'hotspot mJ':>11s} {'exact':>6s}",
    ]
    for point in result.points:
        lines.append(
            f"{point.fraction:9.2f} {point.layer_size:6d} "
            f"{point.mean_rank_error:9.2f} {point.max_rank_error:13d} "
            f"{point.mean_value_error:10.2f} {point.hotspot_energy_mj:11.4f} "
            f"{point.exact_fraction:6.2f}"
        )
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    archive("ext_sampling", text)

    points = {point.fraction: point for point in result.points}
    # The full layer is the exact algorithm.
    assert points[1.0].mean_rank_error == 0.0
    assert points[1.0].exact_fraction == 1.0
    # Rank error decreases as the layer grows...
    assert points[0.1].mean_rank_error > points[0.5].mean_rank_error
    assert points[0.5].mean_rank_error >= points[1.0].mean_rank_error
    # ...and the sampled layers are cheaper for the hotspot.
    assert points[0.1].hotspot_energy_mj < points[1.0].hotspot_energy_mj
    # Concentration: even a 25% layer keeps the mean rank error within a
    # few percent of |N| (binomial concentration around rank phi*|N|).
    population = points[1.0].layer_size
    assert points[0.25].mean_rank_error < 0.1 * population
