"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark regenerates the series behind one of the paper's figures,
prints them in the paper's layout and archives them under
``benchmarks/results/``.  Scale is controlled by ``REPRO_BENCH_SCALE``
(default 0.15): sweep values such as node counts are multiplied by the
scale, and runs/rounds shrink accordingly.  ``REPRO_BENCH_SCALE=1`` runs
the paper's full Table 2 settings (20 runs x 250 rounds — hours, not
minutes).
"""

from __future__ import annotations

import json
import os
import resource
from pathlib import Path

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig, PressureConfig
from repro.experiments.report import format_sweep_table
from repro.experiments.sweeps import SweepResult

RESULTS_DIR = Path(__file__).parent / "results"
#: Repo root, where the committed (diffable) copy of each perf record lives.
REPO_ROOT = Path(__file__).parent.parent


def bench_scale() -> float:
    """Benchmark scale from ``REPRO_BENCH_SCALE`` (default 0.15)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "0.15")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"REPRO_BENCH_SCALE must be a float, got {raw!r}"
        ) from exc
    if not 0 < value <= 1:
        raise ConfigurationError(f"REPRO_BENCH_SCALE out of range (0, 1]: {value}")
    return value


def scaled_values(paper_values: tuple, minimum: float = 1.0) -> list:
    """Multiply the paper's sweep values by the benchmark scale.

    Values that collapse onto the floor are deduplicated (order preserved),
    so very small scales sweep fewer, distinct settings.
    """
    scale = bench_scale()
    kind = type(paper_values[0])
    scaled = [kind(max(minimum, round(v * scale))) for v in paper_values]
    unique: list = []
    for value in scaled:
        if value not in unique:
            unique.append(value)
    return unique


def base_config(**overrides) -> ExperimentConfig:
    """The Table 2 defaults at benchmark scale."""
    return ExperimentConfig(**overrides).scaled(bench_scale())


def base_pressure_config(**overrides) -> PressureConfig:
    """The air-pressure defaults at benchmark scale."""
    return PressureConfig(**overrides).scaled(bench_scale())


def report(result: SweepResult, figure: str, description: str) -> str:
    """Render, print and archive both of the paper's metrics for a sweep."""
    energy = format_sweep_table(
        result,
        metric="max_energy_mj",
        title=f"{figure} — {description} — maximum per-node energy [mJ]",
    )
    lifetime = format_sweep_table(
        result,
        metric="lifetime_rounds",
        title=f"{figure} — {description} — network lifetime [rounds]",
    )
    text = energy + "\n\n" + lifetime + "\n"
    print("\n" + text)
    archive(figure, text)
    return text


def archive(name: str, text: str) -> Path:
    """Write a benchmark's output under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name.lower().replace(' ', '_')}.txt"
    path.write_text(text)
    return path


def peak_rss_kb() -> int:
    """Peak resident set size of this process so far, in kilobytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize to
    kilobytes so the emitted perf records compare across machines.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if os.uname().sysname == "Darwin":  # pragma: no cover - platform dependent
        peak //= 1024
    return int(peak)


def emit_perf(name: str, payload: dict) -> Path:
    """Archive a machine-readable perf record as ``BENCH_<name>.json``.

    The payload is augmented with the process's peak RSS and the benchmark
    scale it was measured at (``benchmarks/check_perf.py`` refuses to
    compare records across scales).  The record is written twice: under
    ``benchmarks/results/`` so CI uploads it with the text tables, and at
    the repo root so the perf trajectory is committed and diffable per PR.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    record = dict(payload)
    record.setdefault("peak_rss_kb", peak_rss_kb())
    record.setdefault("scale", bench_scale())
    text = json.dumps(record, indent=2, sort_keys=True) + "\n"
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(text)
    (REPO_ROOT / f"BENCH_{name}.json").write_text(text)
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The interesting output of these benchmarks is the reproduced series,
    not the wall-clock time, so a single iteration suffices.
    """
    return benchmark.pedantic(fn, iterations=1, rounds=1)
