"""History-service read throughput: cached reads/sec at dashboard load.

The root-side :class:`~repro.serving.history.HistoryStore` exists so the
reproduction can serve heavy *read* traffic about the recent past with no
radio traffic at all.  This benchmark pins that claim: a served run
absorbs its rounds into the store, then a dashboard-style client replays
10k reads per round (windows, decayed estimates, latest) against the warm
read cache, per window size.  The gated metrics are the cached and cold
read rates (``*_reads_per_sec``) plus the serving loop's own
``rounds_per_sec``; results land in ``BENCH_history.json`` and are gated
by ``benchmarks/check_perf.py`` against the committed baseline.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.common import archive, bench_scale, emit_perf, run_once
from repro.datasets.synthetic import SyntheticWorkload
from repro.network.routing import build_routing_tree
from repro.network.topology import connected_random_graph
from repro.serving import (
    MultiQueryRunner,
    PhiQuery,
    QueryRegistry,
    phi_label,
)
from repro.types import QuerySpec

SEED = 11
PHIS = (0.5, 0.9, 0.95, 0.99)
WINDOW_SIZES = (8, 32, 128)
#: Dashboard read traffic replayed per absorbed round and window size.
READS_PER_ROUND = 10_000
#: Cold (cache-cleared) reads timed per window size.
COLD_READS = 1_000
HALF_LIVES = (4.0, 16.0)


def serve(num_nodes: int, num_rounds: int):
    """One served deployment whose history the clients will read."""
    rng = np.random.default_rng(SEED)
    graph = connected_random_graph(num_nodes + 1, 35.0, rng)
    tree = build_routing_tree(graph, root=0)
    workload = SyntheticWorkload(graph.positions, rng)
    spec = QuerySpec(r_min=workload.r_min, r_max=workload.r_max)
    registry = QueryRegistry()
    for phi in PHIS:
        registry.register(PhiQuery(phi_label(phi), phis=(phi,)))
    runner = MultiQueryRunner(registry, spec, tree, workload, graph=graph)
    start = time.perf_counter()
    runner.run(num_rounds)
    elapsed = time.perf_counter() - start
    return runner, num_rounds / elapsed


def replay_reads(store, queries, window: int, reads: int) -> float:
    """Replay a mixed dashboard read pattern; returns elapsed seconds."""
    start = time.perf_counter()
    for index in range(reads):
        query = queries[index % len(queries)]
        op = index % 3
        if op == 0:
            store.window(query, window)
        elif op == 1:
            store.decayed(query, HALF_LIVES[index % len(HALF_LIVES)])
        else:
            store.latest(query)
    return time.perf_counter() - start


def clear_caches(store, queries) -> None:
    for query in queries:
        store._track_or_raise(query).cache.clear()


def compute():
    scale = bench_scale()
    num_nodes = max(40, round(300 * scale))
    num_rounds = max(20, round(120 * scale))
    runner, serve_rps = serve(num_nodes, num_rounds)
    store = runner.history
    queries = [q for q in store.queries() if store.labels(q)]

    windows = {}
    for window in WINDOW_SIZES:
        clear_caches(store, queries)
        # Warm the cache with one pass, then time the per-round traffic.
        replay_reads(store, queries, window, len(queries) * 3)
        before = store.cache_stats()
        hits_before = sum(s.hits for s in before)
        misses_before = sum(s.misses for s in before)
        warm_elapsed = replay_reads(store, queries, window, READS_PER_ROUND)
        stats = store.cache_stats()
        hits = sum(s.hits for s in stats) - hits_before
        misses = sum(s.misses for s in stats) - misses_before

        # Cold reads: every read recomputes (cache cleared each time).
        cold_start = time.perf_counter()
        for index in range(COLD_READS):
            clear_caches(store, queries)
            store.window(queries[index % len(queries)], window)
        cold_elapsed = time.perf_counter() - cold_start

        windows[str(window)] = {
            "window": window,
            "cached_reads_per_sec": READS_PER_ROUND / warm_elapsed,
            "cold_reads_per_sec": COLD_READS / cold_elapsed,
            "hit_rate": hits / (hits + misses),
        }

    return {
        "num_nodes": num_nodes,
        "num_rounds": num_rounds,
        "num_queries": len(queries),
        "reads_per_round": READS_PER_ROUND,
        "serve_rounds_per_sec": serve_rps,
        "retained_items_per_query": max(
            store.size_items(q) for q in queries
        ),
        "windows": windows,
    }


def format_table(data) -> str:
    lines = [
        "history service: cached read throughput per window size "
        f"({data['num_queries']} queries, {data['num_nodes']} nodes, "
        f"{data['num_rounds']} rounds, {data['reads_per_round']} "
        "reads/round)",
        f"{'window':>7s} {'cached r/s':>12s} {'cold r/s':>10s} "
        f"{'hit rate':>9s}",
    ]
    for key in sorted(data["windows"], key=int):
        cell = data["windows"][key]
        lines.append(
            f"{cell['window']:7d} {cell['cached_reads_per_sec']:12,.0f} "
            f"{cell['cold_reads_per_sec']:10,.0f} {cell['hit_rate']:9.1%}"
        )
    lines.append(
        f"serving loop: {data['serve_rounds_per_sec']:.1f} rounds/sec; "
        f"<= {data['retained_items_per_query']} retained items per query"
    )
    return "\n".join(lines) + "\n"


def test_history_read_throughput(benchmark):
    data = run_once(benchmark, compute)
    text = format_table(data)
    print("\n" + text)
    archive("history", text)
    emit_perf("history", data)

    for cell in data["windows"].values():
        # The whole point of the cache: warm reads are answered from it.
        assert cell["hit_rate"] >= 0.95
        # Cached reads must dominate recomputation by a wide margin.
        assert cell["cached_reads_per_sec"] > cell["cold_reads_per_sec"]
