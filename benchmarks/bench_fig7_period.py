"""Figure 7: energy and lifetime vs. the sinusoid period τ.

Paper shapes (Section 5.2.2): every solution is cheapest at large τ (slow
quantile motion); IQ's refinement count stays nearly flat in τ because Ξ
adapts; the histogram approaches degrade more gracefully than LCLL-S, whose
refinements grow linearly with the per-round quantile distance.
"""

from __future__ import annotations

from repro.experiments.sweeps import sweep

from benchmarks.common import base_config, bench_scale, report, run_once

#: The paper sweeps τ = 250, 125, 63, 32, 8 over 250 rounds; at bench scale
#: the horizon shrinks, so the period shrinks proportionally to keep the
#: number of observed oscillations comparable.
PAPER_PERIODS = (250, 125, 63, 32, 8)


def compute():
    scale = bench_scale()
    periods = []
    for period in PAPER_PERIODS:
        value = max(4, round(period * scale))
        if value not in periods:
            periods.append(value)
    return sweep("period", values=periods, base=base_config(), scale=1.0)


def test_fig7_varying_period(benchmark):
    result = run_once(benchmark, compute)
    report(result, "Figure 7", "synthetic dataset, varying the period tau")

    for name in result.series:
        energy = result.energy_series(name)
        if name == "TAG":
            # TAG collects everything every round: flat in tau.
            assert max(energy) < 1.02 * min(energy)
            continue
        # Slowest dynamics (largest tau, first point) are cheapest — compare
        # against the fastest dynamics (last point).
        assert energy[0] < energy[-1], name

    # IQ refinement count is nearly flat in tau (Section 5.2.2) while
    # LCLL-S refinements explode as the quantile moves faster.
    iq_refinements = [m.refinements_per_round for m in result.series["IQ"]]
    slip_refinements = [m.refinements_per_round for m in result.series["LCLL-S"]]
    assert iq_refinements[-1] - iq_refinements[0] < 1.0
    assert slip_refinements[-1] > slip_refinements[0]
