"""Stress test: transient events break IQ's adaptive band (Section 4.2.2).

The paper concedes that "if there are short-lived trends, the number of
refinements and therefore the energy consumption increases" for IQ, and
that histogram approaches are "more useful if the temporal correlation
between consecutive quantiles is low".  This bench quantifies that
concession: a calm field against an event-storm field, both run with the
full algorithm line-up.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.events import EventWorkload
from repro.experiments.config import default_algorithms
from repro.network.routing import build_routing_tree
from repro.network.topology import connected_random_graph
from repro.sim.runner import SimulationRunner
from repro.types import QuerySpec

from benchmarks.common import archive, bench_scale, run_once


def run_setting(event_rate: float, num_nodes: int, rounds: int, seed: int):
    rng = np.random.default_rng((seed, int(event_rate * 100)))
    graph = connected_random_graph(num_nodes + 1, 35.0, rng)
    tree = build_routing_tree(graph, root=0)
    workload = EventWorkload(
        graph.positions,
        rng,
        event_rate=event_rate,
        event_lifetime=4,   # short-lived trends, the Section 4.2.2 weak spot
        event_amplitude_percent=70.0,
        num_rounds=rounds + 1,
    )
    spec = QuerySpec(r_min=workload.r_min, r_max=workload.r_max)
    runner = SimulationRunner(tree, 35.0, check=True)
    out = {}
    for name, factory in default_algorithms().items():
        result = runner.run(factory(spec), workload.values, rounds)
        out[name] = result
    return out


def compute():
    scale = bench_scale()
    num_nodes = max(75, round(500 * scale))
    rounds = max(40, round(250 * scale))
    calm = run_setting(0.0, num_nodes, rounds, seed=20140324)
    stormy = run_setting(1.5, num_nodes, rounds, seed=20140324)
    return calm, stormy


def test_stress_transient_events(benchmark):
    calm, stormy = run_once(benchmark, compute)

    def values_per_round(result):
        return sum(r.values_sent for r in result.rounds) / result.num_rounds

    lines = [
        "transient-event stress (calm vs. event storm)",
        f"{'algorithm':10s} {'calm mJ':>9s} {'storm mJ':>9s} {'calm ref/rnd':>13s} "
        f"{'storm ref/rnd':>14s} {'calm vals':>10s} {'storm vals':>11s}",
    ]
    for name in calm:
        lines.append(
            f"{name:10s} {calm[name].max_mean_round_energy_j * 1e3:9.4f} "
            f"{stormy[name].max_mean_round_energy_j * 1e3:9.4f} "
            f"{calm[name].total_refinements / calm[name].num_rounds:13.2f} "
            f"{stormy[name].total_refinements / stormy[name].num_rounds:14.2f} "
            f"{values_per_round(calm[name]):10.1f} "
            f"{values_per_round(stormy[name]):11.1f}"
        )
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    archive("stress_events", text)

    # Everything stays exact even through event storms.
    for results in (calm, stormy):
        assert all(result.all_exact for result in results.values())

    # The paper's concession materializes as Section 4.2.2 predicts: the
    # broken trends keep Ξ wide, so IQ ships far more raw values during
    # validation and its energy multiplies...
    assert values_per_round(stormy["IQ"]) > 1.5 * values_per_round(calm["IQ"])
    assert (
        stormy["IQ"].max_mean_round_energy_j
        > 1.8 * calm["IQ"].max_mean_round_energy_j
    )

    # ...which shrinks its margin over HBC (relative cost grows under storms).
    def margin(results):
        return (
            results["HBC"].max_mean_round_energy_j
            / results["IQ"].max_mean_round_energy_j
        )

    assert margin(stormy) < margin(calm)
