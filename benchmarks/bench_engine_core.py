"""Engine hot-path microbenchmark: vectorized core vs the object core.

Times lossless convergecast rounds (the paper's dominant primitive) on
random recursive trees at 300 / 3 000 / 30 000 vertices under both
simulation cores, plus the vectorized full round (convergecast +
broadcast) and the per-round ledger-batch overhead.  The node counts are
the trajectory axis and stay fixed across scales; ``REPRO_BENCH_SCALE``
only controls how many rounds are timed.  Results land in
``BENCH_engine.json`` (results dir + repo root) — the machine-readable
perf trajectory that ``benchmarks/check_perf.py`` gates CI on.

The acceptance headline is the 3 000-vertex cell: the committed record
must show the vectorized core >= 5x the object core on lossless
convergecast.  The in-test assertion uses a 3x floor so a noisy CI
runner cannot flake a genuinely fast core.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from benchmarks.common import archive, bench_scale, emit_perf, peak_rss_kb, run_once
from repro.network.tree import RoutingTree, tree_from_parents
from repro.radio.energy import EnergyModel
from repro.radio.ledger import EnergyLedger
from repro.sim.engine import TreeNetwork, UniformPayload

SIZES = (300, 3_000, 30_000)
#: Timed rounds per size at scale 1; multiplied by the benchmark scale.
BASE_ROUNDS = {300: 400, 3_000: 120, 30_000: 20}
HEADLINE_SIZE = 3_000
RADIO_RANGE = 35.0
BROADCAST_BITS = 64


@dataclass(frozen=True)
class CountPayload(UniformPayload):
    """Fixed-size counter payload: every sensor contributes one reading.

    This is the paper's canonical convergecast workload, so it pins
    ``uniform_leaf_values = 1`` — each contributed instance carries exactly
    one value, which lets the vectorized core skip per-object intake.
    """

    count: int

    uniform_bits = 32
    uniform_leaf_values = 1

    def merged_with(self, other: "CountPayload") -> "CountPayload":
        return CountPayload(self.count + other.count)

    def num_values(self) -> int:
        return self.count

    @classmethod
    def vector_reduce(cls, payloads: Sequence["CountPayload"]) -> "CountPayload":
        # Leaves carry exactly one value each (uniform_leaf_values), so the
        # fold over any order is simply the contributor count.
        return cls(len(payloads))


def random_recursive_tree(n: int, seed: int = 29) -> RoutingTree:
    """Uniform random recursive tree — O(n), no physical graph needed."""
    rng = np.random.default_rng(seed)
    parents = [-1] + [int(rng.integers(0, v)) for v in range(1, n)]
    return tree_from_parents(0, parents)


def fresh_net(tree: RoutingTree, core: str) -> TreeNetwork:
    ledger = EnergyLedger(
        num_vertices=tree.num_vertices,
        root=tree.root,
        model=EnergyModel(),
        radio_range=RADIO_RANGE,
    )
    return TreeNetwork(tree, ledger, core=core)


#: Timed repeats per measurement; best-of is reported.  Wall-clock noise is
#: one-sided (GC pauses, scheduler preemption only ever slow a run down),
#: so the fastest repeat is the stablest throughput estimate — this keeps
#: the CI perf gate from flaking on a single unlucky window.
REPEATS = 3


def time_rounds(net: TreeNetwork, contributions, rounds: int, broadcast: bool):
    """Best-of-``REPEATS`` rounds/sec over ``rounds`` timed engine rounds."""
    net.convergecast(contributions)  # warmup: numpy one-time costs, caches
    if broadcast:
        net.broadcast(BROADCAST_BITS)
    best = 0.0
    gc_was_enabled = gc.isenabled()
    gc.disable()  # a collection pause inside a short window dwarfs the work
    try:
        for _ in range(REPEATS):
            start = time.perf_counter()
            for _ in range(rounds):
                net.convergecast(contributions)
                if broadcast:
                    net.broadcast(BROADCAST_BITS)
            elapsed = time.perf_counter() - start
            best = max(best, rounds / elapsed)
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def time_ledger_batch(tree: RoutingTree, rounds: int) -> float:
    """Milliseconds one convergecast's worth of ledger batching costs."""
    ledger = EnergyLedger(
        num_vertices=tree.num_vertices,
        root=tree.root,
        model=EnergyModel(),
        radio_range=RADIO_RANGE,
    )
    senders = np.array(
        [v for v in tree.bottom_up_order if v != tree.root], dtype=np.int64
    )
    receivers = np.array([tree.parent[v] for v in senders], dtype=np.int64)
    m = len(senders)
    bits = np.full(m, 56, dtype=np.int64)
    frames = np.ones(m, dtype=np.int64)
    joules = bits * 1e-9
    energy_vertices = np.empty(2 * m, dtype=np.int64)
    energy_vertices[0::2] = senders
    energy_vertices[1::2] = receivers
    energy_joules = np.empty(2 * m, dtype=np.float64)
    energy_joules[0::2] = joules
    energy_joules[1::2] = joules
    iterations = max(10, rounds)
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(iterations):
            ledger.charge_batch(
                energy_vertices=energy_vertices,
                energy_joules=energy_joules,
                send_vertices=senders,
                send_messages=frames,
                send_bits=bits,
                send_values=frames,
                recv_vertices=receivers,
                recv_messages=frames,
                recv_bits=bits,
            )
        best = min(best, (time.perf_counter() - start) / iterations * 1e3)
    return best


def measure_size(n: int, rounds: int) -> dict:
    tree = random_recursive_tree(n)
    contributions = {v: CountPayload(1) for v in tree.sensor_nodes}
    object_rps = time_rounds(
        fresh_net(tree, "object"), contributions, rounds, broadcast=False
    )
    vector_rps = time_rounds(
        fresh_net(tree, "vector"),
        contributions,
        # The vector core is fast enough to time many more rounds for the
        # same wall-clock budget, which stabilizes the measurement.
        rounds * 10,
        broadcast=False,
    )
    full_round_rps = time_rounds(
        fresh_net(tree, "vector"), contributions, rounds * 10, broadcast=True
    )
    return {
        "num_vertices": n,
        "timed_rounds": rounds,
        "object_convergecast_rounds_per_sec": object_rps,
        "vector_convergecast_rounds_per_sec": vector_rps,
        "vector_full_round_rounds_per_sec": full_round_rps,
        "speedup": vector_rps / object_rps,
        "ledger_batch_ms_per_round": time_ledger_batch(tree, rounds),
        "peak_rss_kb": peak_rss_kb(),
    }


def compute() -> dict:
    scale = bench_scale()
    sizes = {}
    for n in SIZES:
        # The floor of 4 keeps the smallest timed window (30k vertices at
        # the CI scale 0.05) long enough that the perf gate doesn't flake.
        rounds = max(4, round(BASE_ROUNDS[n] * scale))
        sizes[str(n)] = measure_size(n, rounds)
    return {
        "sizes": sizes,
        "headline_speedup": sizes[str(HEADLINE_SIZE)]["speedup"],
    }


def format_table(data: dict) -> str:
    lines = [
        "engine core: lossless convergecast rounds/sec, object vs vectorized",
        f"{'n':>7s} {'rounds':>7s} {'object r/s':>11s} {'vector r/s':>11s} "
        f"{'speedup':>8s} {'full r/s':>10s} {'ledger ms':>10s} {'rss MB':>7s}",
    ]
    for n in SIZES:
        cell = data["sizes"][str(n)]
        lines.append(
            f"{n:7d} {cell['timed_rounds']:7d} "
            f"{cell['object_convergecast_rounds_per_sec']:11.1f} "
            f"{cell['vector_convergecast_rounds_per_sec']:11.1f} "
            f"{cell['speedup']:8.1f} "
            f"{cell['vector_full_round_rounds_per_sec']:10.1f} "
            f"{cell['ledger_batch_ms_per_round']:10.3f} "
            f"{cell['peak_rss_kb'] / 1024:7.0f}"
        )
    return "\n".join(lines) + "\n"


def test_engine_core(benchmark):
    data = run_once(benchmark, compute)
    text = format_table(data)
    print("\n" + text)
    archive("engine", text)
    emit_perf("engine", data)

    # Acceptance: the committed record must show >= 5x at 3k vertices; the
    # in-test floor is 3x so CI noise cannot flake a genuinely fast core.
    assert data["headline_speedup"] >= 3.0
    for n in SIZES:
        cell = data["sizes"][str(n)]
        # Batched accounting must stay a small fraction of the round.
        assert (
            cell["ledger_batch_ms_per_round"]
            < 1e3 / cell["vector_convergecast_rounds_per_sec"]
        )
