"""Figure 4: the adaptive band Ξ tracking the quantile over a pressure trace.

The paper's figure plots, over 125 rounds of an air-pressure trace, the
quantile (black line), the band Ξ (dark grey) inside the network's value
range (light grey), with white gaps marking the rare refinement rounds.
This benchmark regenerates the underlying series and checks the figure's
qualitative content: Ξ tracks the quantile, usually contains the next one,
and refinements are rare after the band has adapted.
"""

from __future__ import annotations

from repro.experiments.figures import fig4_xi_trace

from benchmarks.common import archive, bench_scale, run_once


def compute():
    scale = max(bench_scale(), 0.4)
    return fig4_xi_trace(
        num_rounds=125, num_nodes=max(80, round(1022 * scale * 0.25))
    )


def test_fig4_xi_trace(benchmark):
    trace = run_once(benchmark, compute)

    lines = [
        "round  quantile  xi_l  xi_r  in_band  refined  net_min  net_max"
    ]
    for index, diag in enumerate(trace.rounds):
        lines.append(
            f"{index:5d}  {diag.quantile:8d}  {diag.xi_left:4d}  "
            f"{diag.xi_right:4d}  {diag.values_in_xi:7d}  "
            f"{str(diag.refined):>7s}  {diag.network_min:7d}  {diag.network_max:7d}"
        )
    hit = trace.band_contains_next_quantile_ratio
    lines.append(f"\nband-contains-next-quantile ratio: {hit:.3f}")
    lines.append(f"refinement rounds: {trace.refinement_rounds}")
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    archive("figure_4", text)

    # The quantile stays inside the network's value range...
    for diag in trace.rounds:
        assert diag.network_min <= diag.quantile <= diag.network_max
    # ...Ξ usually already contains the next quantile (few white gaps)...
    assert hit > 0.6
    # ...and refinements are correspondingly rare.
    assert len(trace.refinement_rounds) < len(trace.rounds) * 0.4
