"""Multi-query serving: amortization of k queries over one convergecast.

Sweeps registered-query count against the error budget eps and compares
the serving layer's per-round radio energy with (a) one single-query SKQ
tracker on the same deployment and (b) the k-independent-runs estimate
(k x the single tracker).  The headline acceptance cell is pinned at the
issue's setting — 32 registered queries, 300 nodes — where the serving
layer must stay within 2x the single-query baseline (vs ~32x for
independent runs).  Results land in ``BENCH_multiquery.json`` alongside
the text table.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.common import archive, bench_scale, emit_perf, run_once
from repro.core.sketchq import SketchQuantile
from repro.datasets.synthetic import SyntheticWorkload
from repro.faults.experiment import FaultDriver
from repro.faults.plan import FaultPlan
from repro.network.routing import build_routing_tree
from repro.network.topology import connected_random_graph
from repro.serving import (
    GroupByQuery,
    MultiQueryRunner,
    PhiQuery,
    QueryRegistry,
    RangeQuery,
)
from repro.types import QuerySpec

QUERY_COUNTS = (1, 8, 32)
EPS_VALUES = (0.05, 0.1)

# Pinned acceptance cell (issue headline): 32 queries, 300 nodes, eps 0.05.
# Like bench_faults' ETX_CELL this is deliberately *not* scaled — the claim
# is a seeded measurement on one deployment, not a sweep.
HEADLINE = dict(num_queries=32, num_nodes=300, num_rounds=40, eps=0.05)

SEED = 3
HISTOGRAM_EDGES = (0, 200, 400, 600, 800)


def sector_of(vertex, position):
    """Region assigner for the group-by queries: 100 m x-stripes."""
    if position is None:
        return "s0"
    return f"s{int(position[0] // 100)}"


def dashboard_registry(num_queries: int, eps: float) -> QueryRegistry:
    """The first ``num_queries`` of the 32-query dashboard mix.

    The full mix interleaves a phi-grid (p50/p90/p95/p99 spread over 24
    subscriptions), four sector group-bys and a four-bucket histogram of
    range predicates, so every prefix is a representative dashboard.
    """
    phis = (0.5, 0.9, 0.95, 0.99)
    registry = QueryRegistry()
    group_index = 0
    range_index = 0
    phi_index = 0
    for slot in range(num_queries):
        position = slot % 8
        if position == 5 and group_index < 4:
            registry.register(
                GroupByQuery(f"sector{group_index}", assign=sector_of, eps=eps)
            )
            group_index += 1
        elif position == 7 and range_index < 4:
            low = HISTOGRAM_EDGES[range_index]
            high = HISTOGRAM_EDGES[range_index + 1] - 1
            registry.register(
                RangeQuery(f"bucket{range_index}", low=low, high=high, eps=eps)
            )
            range_index += 1
        else:
            registry.register(
                PhiQuery(
                    f"phi{slot}", phis=(phis[phi_index % 4],), eps=eps
                )
            )
            phi_index += 1
    return registry


def deployment(num_nodes: int):
    rng = np.random.default_rng(SEED)
    graph = connected_random_graph(num_nodes + 1, 35.0, rng)
    tree = build_routing_tree(graph, root=0)
    workload = SyntheticWorkload(graph.positions, rng)
    spec = QuerySpec(r_min=workload.r_min, r_max=workload.r_max)
    return graph, tree, workload, spec


def mj_per_round(ledger, num_rounds: int) -> float:
    total = float(np.sum(ledger.round_energy_history, axis=0).sum())
    return total / num_rounds * 1e3


def run_cell(num_queries, num_nodes, num_rounds, eps, baseline=None):
    """One sweep cell: serving run + single-SKQ baseline on one deployment."""
    graph, tree, workload, spec = deployment(num_nodes)
    if baseline is None:
        driver = FaultDriver(
            lambda s: SketchQuantile(s, eps=eps),
            spec,
            tree,
            workload,
            FaultPlan(),
            graph=graph,
        )
        driver.run(num_rounds)
        baseline = mj_per_round(driver.ledger, num_rounds)

    registry = dashboard_registry(num_queries, eps)
    runner = MultiQueryRunner(registry, spec, tree, workload, graph=graph)
    start = time.perf_counter()
    runner.run(num_rounds)
    elapsed = time.perf_counter() - start
    multi = mj_per_round(runner.driver.ledger, num_rounds)

    phi_errors = [
        item.oracle_error
        for served in runner.rounds
        for answer in served.answers
        if answer.kind in ("phi", "group-by")
        for item in answer.items
        if item.oracle_error is not None
    ]
    range_errors = [
        item.oracle_error
        for served in runner.rounds
        for answer in served.answers
        if answer.kind == "range"
        for item in answer.items
        if item.oracle_error is not None
    ]
    algorithm = runner.driver.algorithm
    return {
        "num_queries": num_queries,
        "num_nodes": num_nodes,
        "num_rounds": num_rounds,
        "eps": eps,
        "mj_per_round": multi,
        "baseline_mj_per_round": baseline,
        "ratio_vs_single": multi / baseline,
        "ratio_vs_independent": multi / (baseline * num_queries),
        "per_query_mj_per_round": multi / num_queries,
        "rounds_per_sec": num_rounds / elapsed,
        "full_refreshes": algorithm.refreshes,
        "partial_refreshes": algorithm.partial_refreshes,
        "targets": len(algorithm.plan.targets),
        "max_phi_rank_error": max(phi_errors) if phi_errors else 0.0,
        "max_range_fraction_error": max(range_errors) if range_errors else 0.0,
    }


def compute():
    scale = bench_scale()
    sweep_nodes = max(60, round(300 * scale))
    sweep_rounds = max(20, round(120 * scale))
    cells = []
    for eps in EPS_VALUES:
        baseline = None
        for num_queries in QUERY_COUNTS:
            cell = run_cell(num_queries, sweep_nodes, sweep_rounds, eps, baseline)
            baseline = cell["baseline_mj_per_round"]
            cells.append(cell)
    headline = run_cell(**HEADLINE)
    return {"sweep": cells, "headline": headline}


def format_table(data) -> str:
    lines = [
        "multi-query serving: per-round energy vs single-SKQ and "
        "k-independent-runs baselines",
        f"{'cell':>9s} {'k':>4s} {'eps':>5s} {'nodes':>6s} "
        f"{'mJ/rnd':>8s} {'1xSKQ':>7s} {'vs 1x':>6s} {'vs kx':>6s} "
        f"{'mJ/q':>6s} {'full':>5s} {'part':>5s} {'maxerr':>7s}",
    ]
    for label, cell in [("sweep", c) for c in data["sweep"]] + [
        ("HEADLINE", data["headline"])
    ]:
        lines.append(
            f"{label:>9s} {cell['num_queries']:4d} {cell['eps']:5.2f} "
            f"{cell['num_nodes']:6d} {cell['mj_per_round']:8.3f} "
            f"{cell['baseline_mj_per_round']:7.3f} "
            f"{cell['ratio_vs_single']:6.2f} "
            f"{cell['ratio_vs_independent']:6.3f} "
            f"{cell['per_query_mj_per_round']:6.3f} "
            f"{cell['full_refreshes']:5d} {cell['partial_refreshes']:5d} "
            f"{cell['max_phi_rank_error']:7.1f}"
        )
    return "\n".join(lines) + "\n"


def test_multiquery_amortization(benchmark):
    data = run_once(benchmark, compute)
    text = format_table(data)
    print("\n" + text)
    archive("multiquery", text)
    emit_perf("multiquery", data)

    headline = data["headline"]
    # The issue's acceptance gate: 32 queries at 300 nodes within 2x the
    # single-query SKQ tracker (independent runs would pay ~32x).
    assert headline["ratio_vs_single"] <= 2.0
    assert headline["ratio_vs_independent"] < 0.1
    # Answers stay inside their budgets while amortizing.
    budget = headline["eps"] * headline["num_nodes"]
    assert headline["max_phi_rank_error"] <= budget
    assert headline["max_range_fraction_error"] <= headline["eps"]
    for cell in data["sweep"]:
        # Every swept cell beats running its queries independently.
        if cell["num_queries"] > 1:
            assert cell["ratio_vs_single"] < cell["num_queries"]
        # A single registered query costs about one tracker.
        if cell["num_queries"] == 1:
            assert cell["ratio_vs_single"] < 1.6
