"""Figure-reproduction benchmarks (pytest-benchmark targets)."""
