"""Extension E-ext1: adaptive switching vs. each fixed algorithm.

The paper (Section 4.2) proposes switching between POS, HBC and IQ without
re-initialization and leaves the selection heuristic to future work; this
bench evaluates our explore/exploit heuristic across the period sweep — the
axis along which the best fixed algorithm actually changes (IQ at large τ,
histogram approaches at small τ, Section 5.2.2).
"""

from __future__ import annotations

from repro.experiments.config import default_algorithms
from repro.experiments.sweeps import sweep
from repro.extensions.adaptive import AdaptiveQuantile

from benchmarks.common import archive, base_config, bench_scale, report, run_once


def compute():
    scale = bench_scale()
    periods = []
    for period in (250, 63, 8):
        value = max(4, round(period * scale))
        if value not in periods:
            periods.append(value)
    algorithms = {
        name: factory
        for name, factory in default_algorithms().items()
        if name in ("POS", "HBC", "IQ")
    }
    algorithms["ADAPT"] = lambda spec: AdaptiveQuantile(
        spec, probe_every=10, probe_rounds=3
    )
    return sweep(
        "period",
        values=periods,
        base=base_config(),
        algorithms=algorithms,
        scale=1.0,
    )


def test_ext_adaptive_switching(benchmark):
    result = run_once(benchmark, compute)
    text = report(result, "Extension E-ext1", "adaptive switching, period sweep")
    archive("ext_adaptive", text)

    for index in range(len(result.xs)):
        adapt = result.energy_series("ADAPT")[index]
        fixed = {
            name: result.energy_series(name)[index]
            for name in ("POS", "HBC", "IQ")
        }
        best = min(fixed.values())
        worst = max(fixed.values())
        # The switcher must track the best fixed choice within a modest
        # factor (probing overhead) and never degenerate to the worst.
        assert adapt <= best * 1.8
        assert adapt < worst

    # Exactness is preserved through every switch.
    for metrics in result.series["ADAPT"]:
        assert metrics.all_exact
