"""Tracking different quantiles φ (Section 5.2.3's extreme-rank remark).

The paper notes that "noise only slightly affects the median, however if
another quantile like k = 1 would be requested, noise could significantly
change the resulting value".  The algorithms are rank-generic (Definition
2.1), so this bench sweeps φ under a noisy workload and verifies:

* exactness at every rank;
* the paper's remark: the *value* of tail quantiles is far more volatile
  under noise than the median's;
* a finding of our own: IQ's *cost* tracks the local value density around
  the tracked rank, not its extremity — tails sit in sparse regions of the
  value distribution, so Ξ encloses fewer values and validation gets
  cheaper, volatility notwithstanding.
"""

from __future__ import annotations

import numpy as np

from repro.core.hbc import HBC
from repro.core.iq import IQ
from repro.experiments.runner import run_synthetic_experiment

from benchmarks.common import archive, base_config, run_once

PHIS = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99)


def compute():
    out = {}
    for phi in PHIS:
        config = base_config(noise_percent=20.0, phi=phi)
        metrics = run_synthetic_experiment(config, {"IQ": IQ, "HBC": HBC})
        out[phi] = metrics
    return out, base_config(noise_percent=20.0)


def quantile_volatility(phi: float, config) -> float:
    """Mean per-round |Δ quantile| of one run (the paper's volatility)."""
    from repro.datasets.synthetic import SyntheticWorkload
    from repro.network.routing import build_routing_tree
    from repro.network.topology import connected_random_graph
    from repro.sim.oracle import exact_quantile, quantile_rank

    rng = np.random.default_rng((config.seed, 99))
    graph = connected_random_graph(config.num_nodes + 1, config.radio_range, rng)
    tree = build_routing_tree(graph, root=0)
    workload = SyntheticWorkload(
        graph.positions, rng, period=config.period,
        noise_percent=config.noise_percent,
    )
    sensors = list(tree.sensor_nodes)
    k = quantile_rank(len(sensors), phi)
    series = [
        exact_quantile(workload.values(t)[sensors], k)
        for t in range(config.rounds)
    ]
    return float(np.abs(np.diff(series)).mean())


def test_quantile_phi_sweep(benchmark):
    results, config = run_once(benchmark, compute)
    volatility = {phi: quantile_volatility(phi, config) for phi in PHIS}

    lines = [
        "quantile parameter sweep (noise 20%)",
        f"{'phi':>5s} {'IQ mJ':>9s} {'HBC mJ':>9s} {'IQ ref/rnd':>11s} "
        f"{'IQ vals/rnd':>12s} {'|dq|/rnd':>9s}",
    ]
    for phi, metrics in results.items():
        lines.append(
            f"{phi:5.2f} {metrics['IQ'].max_energy_mj:9.4f} "
            f"{metrics['HBC'].max_energy_mj:9.4f} "
            f"{metrics['IQ'].refinements_per_round:11.2f} "
            f"{metrics['IQ'].values_per_round:12.1f} "
            f"{volatility[phi]:9.2f}"
        )
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    archive("quantile_phi", text)

    # Every rank is tracked exactly by both algorithms.
    for metrics in results.values():
        assert metrics["IQ"].all_exact
        assert metrics["HBC"].all_exact

    # The paper's remark: extreme-rank values are far more noise-volatile
    # than the median's.
    tail_volatility = max(volatility[0.01], volatility[0.99])
    assert tail_volatility > 1.5 * volatility[0.5]

    # Our density finding: IQ ships the most values (and pays the most)
    # around the median, where the value distribution is densest.
    vals = {phi: results[phi]["IQ"].values_per_round for phi in PHIS}
    assert vals[0.5] > vals[0.01]
    assert vals[0.5] > vals[0.99]
    energy = {phi: results[phi]["IQ"].max_energy_mj for phi in PHIS}
    assert energy[0.5] > energy[0.01]
    assert energy[0.5] > energy[0.99]
