"""Ablation: IQ's Ξ machinery — window length, init policy, hints.

DESIGN.md E-abl2.  Sweeps the design choices Section 4.2 leaves open:
the adaptation window ``m``, the Ξ seeding policy, and the use of the
max-difference hint during refinement.
"""

from __future__ import annotations

from repro.core.iq import IQ
from repro.experiments.runner import run_synthetic_experiment

from benchmarks.common import archive, base_config, bench_scale, run_once

WINDOWS = (2, 4, 6, 12)


def compute():
    base = base_config(period=max(8, round(125 * bench_scale())))
    algorithms = {}
    for window in WINDOWS:
        algorithms[f"IQ-m{window}"] = (
            lambda spec, m=window: IQ(spec, window=m)
        )
    algorithms["IQ-median-gap"] = lambda spec: IQ(spec, xi_init="median_gap")
    algorithms["IQ-no-hints"] = lambda spec: IQ(spec, use_hints=False)
    return run_synthetic_experiment(base, algorithms), base


def test_ablation_xi(benchmark):
    metrics, config = run_once(benchmark, compute)

    lines = [
        f"IQ Ξ ablation ({config.num_nodes} nodes, period {config.period})",
        f"{'variant':14s} {'maxE [mJ]':>12s} {'refin/rnd':>10s} {'vals/rnd':>10s}",
    ]
    for name, m in metrics.items():
        lines.append(
            f"{name:14s} {m.max_energy_mj:12.4f} "
            f"{m.refinements_per_round:10.2f} {m.values_per_round:10.1f}"
        )
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    archive("ablation_xi", text)

    # All variants stay exact (checked by the runner) and in the same
    # performance ballpark: Ξ details tune IQ, they don't make or break it.
    energies = [m.max_energy_mj for m in metrics.values()]
    assert max(energies) < 3 * min(energies)

    # Longer windows keep the band open longer: at least as many values
    # shipped during validation, but no more refinements.
    first, last = f"IQ-m{WINDOWS[0]}", f"IQ-m{WINDOWS[-1]}"
    assert metrics[last].values_per_round >= metrics[first].values_per_round
    assert (
        metrics[last].refinements_per_round
        <= metrics[first].refinements_per_round + 0.05
    )
