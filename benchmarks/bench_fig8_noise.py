"""Figure 8: energy and lifetime vs. the measurement noise ψ.

Paper shapes (Section 5.2.3): POS, HBC and IQ degrade with noise because
more nodes cross the filter and hints widen; LCLL-H is nearly insensitive —
only the quantile's own motion matters to it; LCLL-S converges towards
LCLL-H at high noise.
"""

from __future__ import annotations

from repro.experiments.sweeps import NOISE_PERCENTS, sweep

from benchmarks.common import base_config, report, run_once


def compute():
    return sweep(
        "noise_percent",
        values=NOISE_PERCENTS,  # percentages need no scaling
        base=base_config(),
        scale=1.0,
    )


def test_fig8_varying_noise(benchmark):
    result = run_once(benchmark, compute)
    report(result, "Figure 8", "synthetic dataset, varying the noise psi")

    def growth(name: str) -> float:
        series = result.energy_series(name)
        return series[-1] / series[0]

    # The filter-based approaches pay for noise.
    for name in ("POS", "HBC", "IQ"):
        assert growth(name) > 1.3, name
    # LCLL-H barely cares: its validation only reacts to bucket crossings
    # and its refinements only to quantile motion.
    assert growth("LCLL-H") < growth("POS")
    assert growth("LCLL-H") < 1.6
    # The LCLL variants are the least noise-sensitive approaches because
    # only the quantile's (noise-robust) motion drives their refinements.
    # Known deviation from the paper: our slip windows absorb the median's
    # noise wiggle entirely, so LCLL-S does not converge to LCLL-H at high
    # noise as Fig 8 shows — see EXPERIMENTS.md.
    assert growth("LCLL-S") < growth("POS")
    # TAG's collection cost is noise-independent by construction.
    assert growth("TAG") < 1.05
