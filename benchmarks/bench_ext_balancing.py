"""Extension E-ext4: routing-tree rotation spreads the hotspot load.

The paper's optimization target is the hotspot node's energy (Section 4.1)
and its lifetime metric dies with the first battery.  Rotating among the
many equally-min-hop routing trees — at zero protocol cost, since all
algorithm state is value-domain — spreads the forwarding burden.

The gain is topology-dependent: when the sink's immediate neighbourhood is
the unavoidable bottleneck, rotation cannot help (and the randomized
parent choice can even cost a few percent); when alternative forwarders
exist, lifetimes stretch by 5-10%.  The bench therefore averages over
several deployments.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import SyntheticWorkload
from repro.experiments.config import default_algorithms
from repro.extensions.balancing import RotatingTreeRunner
from repro.network.routing import build_routing_tree
from repro.network.topology import connected_random_graph
from repro.sim.runner import SimulationRunner
from repro.types import QuerySpec

from benchmarks.common import archive, bench_scale, run_once

DEPLOYMENT_SEEDS = (1, 2, 3)


def compute():
    scale = bench_scale()
    num_nodes = max(100, round(500 * scale))
    rounds = max(50, round(250 * scale))
    gains: dict[str, list[float]] = {name: [] for name in default_algorithms()}
    exact = True
    for seed in DEPLOYMENT_SEEDS:
        rng = np.random.default_rng(seed)
        graph = connected_random_graph(num_nodes + 1, 35.0, rng)
        workload = SyntheticWorkload(graph.positions, rng, period=rounds // 2)
        spec = QuerySpec(r_min=workload.r_min, r_max=workload.r_max)
        fixed_runner = SimulationRunner(build_routing_tree(graph, 0), 35.0)
        for name, factory in default_algorithms().items():
            fixed = fixed_runner.run(factory(spec), workload.values, rounds)
            rotating_runner = RotatingTreeRunner(
                graph, 35.0, np.random.default_rng(7), rebuild_every=3
            )
            rotating = rotating_runner.run(factory(spec), workload.values, rounds)
            gains[name].append(
                rotating.lifetime_rounds / fixed.lifetime_rounds
            )
            exact = exact and fixed.all_exact and rotating.all_exact
    return gains, exact


def test_ext_tree_rotation(benchmark):
    gains, exact = run_once(benchmark, compute)

    lines = [
        "routing-tree rotation (rebuild every 3 rounds, "
        f"{len(DEPLOYMENT_SEEDS)} deployments)",
        f"{'algorithm':10s} "
        + "".join(f"{'dep' + str(i):>8s}" for i in DEPLOYMENT_SEEDS)
        + f"{'mean gain':>11s}",
    ]
    means = {}
    for name, values in gains.items():
        means[name] = float(np.mean(values))
        lines.append(
            f"{name:10s} "
            + "".join(f"{value:8.2f}" for value in values)
            + f"{means[name]:10.2f}x"
        )
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    archive("ext_balancing", text)

    # Exactness survives every rotation on every deployment.
    assert exact
    # Rotation never hurts much and helps on average...
    for name, mean in means.items():
        assert mean > 0.95, name
    assert float(np.mean(list(means.values()))) > 1.01
    # ...with the heaviest forwarder (TAG) benefiting the most.
    assert means["TAG"] >= max(m for n, m in means.items() if n != "TAG") - 0.03
