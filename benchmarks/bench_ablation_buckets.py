"""Ablation: HBC's cost-model bucket count vs. fixed fan-outs.

DESIGN.md E-abl1.  The paper's core cost-model claim ([21], Section 4.1) is
that a binary search (b = 2) is suboptimal and that the Lambert-W optimum
minimizes the hotspot's refinement bits.  The model prices a *dense*
histogram (``b`` counts per message), so the headline sweep disables the
empty-bucket compression; a compressed sweep is printed alongside to show
how compression shifts the effective optimum towards larger ``b`` (with
few values per interval, big histograms become almost free on air).

The direct-request shortcut is disabled throughout so the refinement
machinery itself is measured.
"""

from __future__ import annotations

from repro.core.cost_model import rounded_optimal_buckets
from repro.core.hbc import HBC
from repro.experiments.runner import run_synthetic_experiment

from benchmarks.common import archive, base_config, bench_scale, run_once

FIXED_BUCKETS = (2, 4, 8, 16, 32, 64, 128, 256)


def make_algorithms(compressed: bool):
    algorithms = {
        f"HBC-b{buckets}": (
            lambda spec, b=buckets: HBC(
                spec,
                num_buckets=b,
                direct_request_limit=0,
                compressed_histograms=compressed,
            )
        )
        for buckets in FIXED_BUCKETS
    }
    algorithms["HBC-bopt"] = lambda spec: HBC(
        spec, direct_request_limit=0, compressed_histograms=compressed
    )
    return algorithms


def compute():
    base = base_config(r_max=65535, period=max(8, round(63 * bench_scale())))
    dense = run_synthetic_experiment(base, make_algorithms(compressed=False))
    compressed = run_synthetic_experiment(base, make_algorithms(compressed=True))
    return dense, compressed, base


def test_ablation_bucket_count(benchmark):
    dense, compressed, config = run_once(benchmark, compute)
    optimum = rounded_optimal_buckets()

    lines = [
        f"HBC bucket-count ablation ({config.num_nodes} nodes, "
        f"universe {config.r_max + 1}, cost-model optimum b={optimum})",
        f"{'variant':12s} {'dense maxE':>12s} {'compr maxE':>12s} {'refin/rnd':>10s}",
    ]
    for name in dense:
        lines.append(
            f"{name:12s} {dense[name].max_energy_mj:12.4f} "
            f"{compressed[name].max_energy_mj:12.4f} "
            f"{dense[name].refinements_per_round:10.2f}"
        )
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    archive("ablation_buckets", text)

    energies = {name: m.max_energy_mj for name, m in dense.items()}
    # The cost-model choice beats the binary search...
    assert energies["HBC-bopt"] < energies["HBC-b2"]
    # ...and the message-filling histograms of dense encodings.
    assert energies["HBC-bopt"] < energies["HBC-b256"]
    # The optimum sits near the best fixed setting.
    best_fixed = min(
        energy for name, energy in energies.items() if name != "HBC-bopt"
    )
    assert energies["HBC-bopt"] <= best_fixed * 1.25
    # Refinement counts fall monotonically with b (more buckets = fewer
    # rounds), which is the log_b behaviour the cost model trades off.
    refinements = [
        dense[f"HBC-b{b}"].refinements_per_round for b in FIXED_BUCKETS
    ]
    assert all(
        later <= earlier + 1e-9
        for earlier, later in zip(refinements, refinements[1:])
    )
    # Compression never hurts.
    for name in dense:
        assert compressed[name].max_energy_mj <= dense[name].max_energy_mj * 1.01
