"""Figure 5: the interpolated-noise field used to initialize node values.

The paper shows an example 256-level greyscale noise image.  This benchmark
renders the field and verifies its two load-bearing statistical properties:
full 8-bit dynamic range (before the sub-level dither) and strong spatial
correlation (the reason physically close nodes measure similar values).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import fig5_noise_field

from benchmarks.common import archive, run_once


def test_fig5_noise_field(benchmark):
    result = run_once(benchmark, fig5_noise_field)
    field = result.field

    text = (
        f"shape: {field.shape}\n"
        f"grey levels: {result.grey_levels}\n"
        f"lag-1 spatial autocorrelation: {result.spatial_correlation:.4f}\n"
        f"mean: {field.mean():.4f}  std: {field.std():.4f}\n"
    )
    print("\n" + text)
    archive("figure_5", text)

    assert field.shape == (256, 256)
    assert result.grey_levels > 200  # near-full 8-bit range
    assert result.spatial_correlation > 0.95
    # The field is non-degenerate noise, not a gradient: both tails exist.
    assert np.quantile(field, 0.05) < 0.35
    assert np.quantile(field, 0.95) > 0.65
